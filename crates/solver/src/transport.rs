//! Transportation problems: minimum *total* cost supply/demand matching.
//!
//! A thin wrapper over [`crate::mcmf`] used wherever a scheduler needs a
//! cheapest token re-distribution without the min-max objective (the
//! bottleneck variant used by the remapping layer lives in
//! [`crate::bottleneck`]).

use crate::mcmf::MinCostFlow;

/// Error from transportation solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Total supply differs from total demand.
    Unbalanced {
        /// Sum of supplies.
        supply: i64,
        /// Sum of demands.
        demand: i64,
    },
    /// Negative supply or demand entry.
    Negative,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Unbalanced { supply, demand } => {
                write!(f, "supply {supply} != demand {demand}")
            }
            TransportError::Negative => write!(f, "negative supply or demand"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Solves the balanced transportation problem, minimizing total cost.
///
/// `cost[i][j]` is the per-unit cost from supplier `i` to consumer `j`.
/// Returns the shipment matrix and its total cost.
///
/// # Errors
///
/// Returns [`TransportError`] if entries are negative or totals mismatch.
///
/// # Panics
///
/// Panics if `cost` dimensions do not match the supply/demand lengths.
pub fn min_cost_transport(
    supply: &[i64],
    demand: &[i64],
    cost: &[Vec<i64>],
) -> Result<(Vec<Vec<i64>>, i64), TransportError> {
    assert_eq!(cost.len(), supply.len(), "cost rows != suppliers");
    for row in cost {
        assert_eq!(row.len(), demand.len(), "cost cols != consumers");
    }
    if supply.iter().any(|&s| s < 0) || demand.iter().any(|&d| d < 0) {
        return Err(TransportError::Negative);
    }
    let total_s: i64 = supply.iter().sum();
    let total_d: i64 = demand.iter().sum();
    if total_s != total_d {
        return Err(TransportError::Unbalanced {
            supply: total_s,
            demand: total_d,
        });
    }

    let ns = supply.len();
    let nd = demand.len();
    // Nodes: 0 = source, 1..=ns suppliers, ns+1..=ns+nd consumers, sink last.
    let mut g = MinCostFlow::new(ns + nd + 2);
    let (src, sink) = (0, ns + nd + 1);
    for (i, &s) in supply.iter().enumerate() {
        g.add_edge(src, 1 + i, s, 0);
    }
    let mut ship_edges = vec![vec![None; nd]; ns];
    for i in 0..ns {
        for j in 0..nd {
            let cap = supply[i].min(demand[j]);
            if cap > 0 {
                ship_edges[i][j] = Some(g.add_edge(1 + i, 1 + ns + j, cap, cost[i][j]));
            }
        }
    }
    for (j, &d) in demand.iter().enumerate() {
        g.add_edge(1 + ns + j, sink, d, 0);
    }
    let result = g.solve(src, sink);
    debug_assert_eq!(result.flow, total_s, "balanced problem must saturate");

    let mut ship = vec![vec![0i64; nd]; ns];
    for i in 0..ns {
        for j in 0..nd {
            if let Some(e) = ship_edges[i][j] {
                ship[i][j] = g.flow_on(e);
            }
        }
    }
    Ok((ship, result.cost))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_two_by_two() {
        // Supplier 0 prefers consumer 0, supplier 1 prefers consumer 1.
        let ship = min_cost_transport(&[3, 4], &[3, 4], &[vec![1, 10], vec![10, 1]]).unwrap();
        assert_eq!(ship.0[0][0], 3);
        assert_eq!(ship.0[1][1], 4);
        assert_eq!(ship.1, 3 + 4);
    }

    #[test]
    fn forced_expensive_shipment() {
        // Demand forces crossing: supplier 0 has 5, consumers need 2 + 3.
        let (ship, cost) = min_cost_transport(&[5, 0], &[2, 3], &[vec![1, 4], vec![0, 0]]).unwrap();
        assert_eq!(ship[0][0], 2);
        assert_eq!(ship[0][1], 3);
        assert_eq!(cost, 2 + 12);
    }

    #[test]
    fn conservation_invariants() {
        let supply = [7, 2, 5];
        let demand = [4, 4, 6];
        let cost = vec![vec![3, 1, 4], vec![1, 5, 9], vec![2, 6, 5]];
        let (ship, _) = min_cost_transport(&supply, &demand, &cost).unwrap();
        for (i, &s) in supply.iter().enumerate() {
            assert_eq!(ship[i].iter().sum::<i64>(), s, "row {i}");
        }
        for (j, &d) in demand.iter().enumerate() {
            assert_eq!(ship.iter().map(|r| r[j]).sum::<i64>(), d, "col {j}");
        }
    }

    #[test]
    fn optimality_vs_bruteforce_small() {
        // 2x2 with all integer splits enumerable.
        let supply = [4, 3];
        let demand = [5, 2];
        let cost = vec![vec![2, 7], vec![3, 1]];
        let (_, best) = min_cost_transport(&supply, &demand, &cost).unwrap();
        let mut brute = i64::MAX;
        // x = amount supplier 0 sends to consumer 0.
        for x in 0..=4i64 {
            let s0c1 = 4 - x;
            let s1c0 = 5 - x;
            let s1c1 = 2 - s0c1;
            if s0c1 < 0 || s1c0 < 0 || s1c1 < 0 || s1c0 + s1c1 != 3 {
                continue;
            }
            brute = brute.min(2 * x + 7 * s0c1 + 3 * s1c0 + s1c1);
        }
        assert_eq!(best, brute);
    }

    #[test]
    fn unbalanced_is_rejected() {
        let err = min_cost_transport(&[1], &[2], &[vec![1]]).unwrap_err();
        assert!(matches!(err, TransportError::Unbalanced { .. }));
    }

    #[test]
    fn negative_entries_are_rejected() {
        let err = min_cost_transport(&[-1], &[-1], &[vec![1]]).unwrap_err();
        assert_eq!(err, TransportError::Negative);
    }

    #[test]
    fn zero_everything_is_fine() {
        let (ship, cost) = min_cost_transport(&[0, 0], &[0], &[vec![5], vec![5]]).unwrap();
        assert_eq!(cost, 0);
        assert!(ship.iter().flatten().all(|&f| f == 0));
    }
}

//! # zeppelin-solver
//!
//! Optimization substrate replacing the paper's external solver (Gurobi).
//!
//! - [`mcmf`]: exact min-cost max-flow (successive shortest paths with
//!   potentials);
//! - [`transport`]: balanced transportation problems (minimum total cost);
//! - [`simplex`]: dense two-phase primal simplex for small LPs;
//! - [`bottleneck`]: the remapping layer's min-max transport (Eq. 2), with
//!   an exact combinatorial algorithm cross-validated against the LP.
//!
//! # Examples
//!
//! ```
//! use zeppelin_solver::bottleneck::{solve_bottleneck, RemapProblem};
//!
//! let p = RemapProblem {
//!     tokens: vec![10, 2, 7, 1],
//!     node_of: vec![0, 0, 1, 1],
//!     intra_cost: 1.0,
//!     inter_cost: 10.0,
//! };
//! let plan = solve_bottleneck(&p);
//! assert_eq!(plan.apply(&p.tokens), plan.targets);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bottleneck;
pub mod mcmf;
pub mod simplex;
pub mod transport;

pub use bottleneck::{
    solve_bottleneck, solve_bottleneck_to, solve_lp, Move, RemapPlan, RemapProblem,
};
pub use mcmf::{EdgeId, FlowResult, MinCostFlow};
pub use simplex::{LinearProgram, LpOutcome};
pub use transport::{min_cost_transport, TransportError};

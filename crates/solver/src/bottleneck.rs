//! Bottleneck (min-max) transport: the remapping layer's Eq. 2.
//!
//! Given per-rank token counts `A`, the remapping layer moves tokens so each
//! rank holds the average, minimizing the *maximum per-sender weighted
//! volume* `max_i Σ_j T_ij · M_ij`, where `T_ij` is the inverse bandwidth
//! between ranks `i` and `j` — `intra_cost` on the same node, `inter_cost`
//! across nodes (Eq. 2 of the paper).
//!
//! Because `T` takes only two values, the LP has a closed combinatorial
//! optimum, which [`solve_bottleneck`] computes exactly:
//!
//! 1. **Maximal intra-node matching.** Shifting a unit from an inter- to an
//!    intra-node destination never increases any sender's cost, so every
//!    optimal plan matches `min(surplus_n, deficit_n)` tokens inside each
//!    node `n`.
//! 2. **Water-filling.** Within a node, the intra-matched budget is
//!    allocated to senders so as to equalize (from the top) their costs
//!    `inter·s_i − (inter − intra)·x_i`.
//!
//! [`solve_lp`] solves the same instance with the dense simplex of
//! [`crate::simplex`] (the paper's "standard solver" path) and is used to
//! cross-validate the combinatorial solution in tests.

use crate::simplex::{LinearProgram, LpOutcome};

/// One token movement between ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Sending rank.
    pub from: usize,
    /// Receiving rank.
    pub to: usize,
    /// Tokens moved.
    pub tokens: u64,
}

/// A remapping instance.
#[derive(Debug, Clone, PartialEq)]
pub struct RemapProblem {
    /// Current tokens per rank (`A` in the paper).
    pub tokens: Vec<u64>,
    /// Node index of each rank (defines which pairs are intra-node).
    pub node_of: Vec<usize>,
    /// Per-token cost between same-node ranks (inverse intra bandwidth).
    pub intra_cost: f64,
    /// Per-token cost between cross-node ranks (inverse inter bandwidth).
    pub inter_cost: f64,
}

/// A solved remapping plan.
#[derive(Debug, Clone, PartialEq)]
pub struct RemapPlan {
    /// Balanced target token count per rank (`B`; sums to `Σ A`).
    pub targets: Vec<u64>,
    /// Token movements realizing the targets.
    pub moves: Vec<Move>,
    /// The objective: maximum per-sender weighted cost.
    pub max_sender_cost: f64,
}

impl RemapProblem {
    /// Validates dimensions and costs.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, the instance is empty, or costs are not
    /// positive with `intra_cost <= inter_cost`.
    fn validate(&self) {
        assert!(!self.tokens.is_empty(), "empty remap problem");
        assert_eq!(
            self.tokens.len(),
            self.node_of.len(),
            "tokens/node_of length mismatch"
        );
        assert!(
            self.intra_cost > 0.0 && self.inter_cost >= self.intra_cost,
            "costs must satisfy 0 < intra <= inter"
        );
    }

    /// Balanced targets: `⌊ΣA/d⌋` each, remainder going to the ranks with
    /// the most tokens (minimizes movement; ties broken by rank index).
    pub fn targets(&self) -> Vec<u64> {
        let d = self.tokens.len() as u64;
        let total: u64 = self.tokens.iter().sum();
        let base = total / d;
        let rem = (total % d) as usize;
        let mut order: Vec<usize> = (0..self.tokens.len()).collect();
        order.sort_by(|&a, &b| self.tokens[b].cmp(&self.tokens[a]).then(a.cmp(&b)));
        let mut t = vec![base; self.tokens.len()];
        for &i in order.iter().take(rem) {
            t[i] += 1;
        }
        t
    }
}

impl RemapPlan {
    /// Applies the plan's moves to `tokens`, returning the new distribution.
    ///
    /// # Panics
    ///
    /// Panics if a move over-drains a rank — a malformed plan.
    pub fn apply(&self, tokens: &[u64]) -> Vec<u64> {
        let mut out = tokens.to_vec();
        for m in &self.moves {
            assert!(out[m.from] >= m.tokens, "move over-drains rank {}", m.from);
            out[m.from] -= m.tokens;
            out[m.to] += m.tokens;
        }
        out
    }

    /// Per-sender weighted costs under the problem's cost matrix.
    pub fn sender_costs(&self, p: &RemapProblem) -> Vec<f64> {
        let mut costs = vec![0.0; p.tokens.len()];
        for m in &self.moves {
            let c = if p.node_of[m.from] == p.node_of[m.to] {
                p.intra_cost
            } else {
                p.inter_cost
            };
            costs[m.from] += c * m.tokens as f64;
        }
        costs
    }
}

/// Solves the min-max remapping problem exactly (combinatorial algorithm),
/// balancing to the flat per-rank average.
pub fn solve_bottleneck(p: &RemapProblem) -> RemapPlan {
    p.validate();
    let targets = p.targets();
    solve_bottleneck_to(p, targets)
}

/// Like [`solve_bottleneck`], but rebalances to caller-provided `targets`
/// (e.g. speed-proportional targets on heterogeneous clusters).
///
/// # Panics
///
/// Panics if `targets` has the wrong length or a different token total.
pub fn solve_bottleneck_to(p: &RemapProblem, targets: Vec<u64>) -> RemapPlan {
    p.validate();
    assert_eq!(targets.len(), p.tokens.len(), "one target per rank");
    assert_eq!(
        targets.iter().sum::<u64>(),
        p.tokens.iter().sum::<u64>(),
        "targets must conserve tokens"
    );
    let d = p.tokens.len();
    let n_nodes = p.node_of.iter().copied().max().unwrap_or(0) + 1;

    // Surpluses and deficits per rank.
    let surplus: Vec<u64> = (0..d)
        .map(|i| p.tokens[i].saturating_sub(targets[i]))
        .collect();
    let deficit: Vec<u64> = (0..d)
        .map(|i| targets[i].saturating_sub(p.tokens[i]))
        .collect();

    let mut moves: Vec<Move> = Vec::new();
    // Water-filled intra allocation per sender; remainder ships cross-node.
    let mut cross_supply: Vec<(usize, u64)> = Vec::new(); // (rank, tokens).
    let mut cross_demand: Vec<(usize, u64)> = Vec::new();

    for node in 0..n_nodes {
        let ranks: Vec<usize> = (0..d).filter(|&i| p.node_of[i] == node).collect();
        let senders: Vec<usize> = ranks.iter().copied().filter(|&i| surplus[i] > 0).collect();
        let s_node: u64 = senders.iter().map(|&i| surplus[i]).sum();
        let d_node: u64 = ranks.iter().map(|&i| deficit[i]).sum();
        let matched = s_node.min(d_node);

        // Water-fill: choose x_i (intra tokens per sender) summing to
        // `matched`, minimizing max_i (inter·s_i − (inter−intra)·x_i).
        let x = water_fill(
            &senders.iter().map(|&i| surplus[i]).collect::<Vec<_>>(),
            matched,
            p.intra_cost,
            p.inter_cost,
        );

        // Emit intra moves: walk this node's deficit ranks with a cursor.
        let mut deficits: Vec<(usize, u64)> = ranks
            .iter()
            .copied()
            .filter(|&i| deficit[i] > 0)
            .map(|i| (i, deficit[i]))
            .collect();
        let mut di = 0usize;
        for (k, &sender) in senders.iter().enumerate() {
            let mut remaining = x[k];
            while remaining > 0 {
                let (dst, avail) = &mut deficits[di];
                let amt = remaining.min(*avail);
                moves.push(Move {
                    from: sender,
                    to: *dst,
                    tokens: amt,
                });
                remaining -= amt;
                *avail -= amt;
                if *avail == 0 {
                    di += 1;
                }
            }
            let cross = surplus[sender] - x[k];
            if cross > 0 {
                cross_supply.push((sender, cross));
            }
        }
        // Unfilled deficits become cross-node demand.
        for &(dst, avail) in deficits.iter().skip(di) {
            if avail > 0 {
                cross_demand.push((dst, avail));
            }
        }
    }

    // Cross-node matching: all pairs cost `inter`, so any pairing is
    // optimal; match greedily in rank order for determinism.
    let (mut si, mut dj) = (0usize, 0usize);
    while si < cross_supply.len() {
        let (from, s_avail) = &mut cross_supply[si];
        if *s_avail == 0 {
            si += 1;
            continue;
        }
        let (to, d_avail) = &mut cross_demand[dj];
        let amt = (*s_avail).min(*d_avail);
        moves.push(Move {
            from: *from,
            to: *to,
            tokens: amt,
        });
        *s_avail -= amt;
        *d_avail -= amt;
        if *d_avail == 0 {
            dj += 1;
        }
    }

    let plan = RemapPlan {
        targets,
        moves,
        max_sender_cost: 0.0,
    };
    let max = plan.sender_costs(p).into_iter().fold(0.0f64, f64::max);
    RemapPlan {
        max_sender_cost: max,
        ..plan
    }
}

/// Allocates `budget` intra tokens among senders with surpluses `s`,
/// minimizing `max_i (inter·s_i − (inter−intra)·x_i)`; returns integer
/// `x_i` with `Σx_i = budget`, `0 <= x_i <= s_i`.
fn water_fill(s: &[u64], budget: u64, intra: f64, inter: f64) -> Vec<u64> {
    debug_assert!(budget <= s.iter().sum::<u64>());
    if s.is_empty() || budget == 0 {
        return vec![0; s.len()];
    }
    let gap = inter - intra;
    if gap <= 0.0 {
        // Costs are equal: any allocation is optimal; fill in order.
        let mut left = budget;
        return s
            .iter()
            .map(|&si| {
                let x = si.min(left);
                left -= x;
                x
            })
            .collect();
    }
    // Binary search the water level t: x_i(t) = clamp((inter·s_i − t)/gap,
    // 0, s_i) is decreasing in t; find t where the sum meets the budget.
    let (mut lo, mut hi) = (
        0.0f64,
        inter * s.iter().map(|&v| v as f64).fold(0.0, f64::max),
    );
    for _ in 0..100 {
        let t = 0.5 * (lo + hi);
        let total: f64 = s
            .iter()
            .map(|&si| ((inter * si as f64 - t) / gap).clamp(0.0, si as f64))
            .sum();
        if total > budget as f64 {
            lo = t;
        } else {
            hi = t;
        }
    }
    let t = hi;
    // Integerize: floor each, then hand out the remainder to the currently
    // most expensive senders.
    let mut x: Vec<u64> = s
        .iter()
        .map(|&si| (((inter * si as f64 - t) / gap).clamp(0.0, si as f64)).floor() as u64)
        .collect();
    let mut left = budget - x.iter().sum::<u64>().min(budget);
    while left > 0 {
        // Highest current cost with headroom gets the next token.
        let mut best: Option<usize> = None;
        let mut best_cost = f64::NEG_INFINITY;
        for i in 0..s.len() {
            if x[i] < s[i] {
                let c = inter * s[i] as f64 - gap * x[i] as f64;
                if c > best_cost {
                    best_cost = c;
                    best = Some(i);
                }
            }
        }
        let i = best.expect("budget <= total surplus");
        x[i] += 1;
        left -= 1;
    }
    x
}

/// Solves the min-max remapping problem with the LP of Eq. 2 (epigraph
/// form) via the dense simplex; reference implementation for tests.
///
/// Continuous relaxation: returned moves carry floor-rounded volumes and the
/// residual is repaired greedily, so the objective may exceed the true
/// optimum by at most a few tokens' cost.
pub fn solve_lp(p: &RemapProblem) -> RemapPlan {
    p.validate();
    let targets = p.targets();
    let d = p.tokens.len();
    let surplus: Vec<u64> = (0..d)
        .map(|i| p.tokens[i].saturating_sub(targets[i]))
        .collect();
    let deficit: Vec<u64> = (0..d)
        .map(|i| targets[i].saturating_sub(p.tokens[i]))
        .collect();
    let senders: Vec<usize> = (0..d).filter(|&i| surplus[i] > 0).collect();
    let receivers: Vec<usize> = (0..d).filter(|&i| deficit[i] > 0).collect();
    if senders.is_empty() {
        return RemapPlan {
            targets,
            moves: Vec::new(),
            max_sender_cost: 0.0,
        };
    }

    // Variables: M[si][rj] for each sender × receiver, then t.
    let nm = senders.len() * receivers.len();
    let mut lp = LinearProgram::new(nm + 1);
    lp.objective[nm] = 1.0;
    let idx = |si: usize, rj: usize| si * receivers.len() + rj;
    let cost = |i: usize, j: usize| {
        if p.node_of[i] == p.node_of[j] {
            p.intra_cost
        } else {
            p.inter_cost
        }
    };
    for (si, &i) in senders.iter().enumerate() {
        let mut row = vec![0.0; nm + 1];
        for rj in 0..receivers.len() {
            row[idx(si, rj)] = 1.0;
        }
        lp.add_eq(row, surplus[i] as f64);
        let mut cost_row = vec![0.0; nm + 1];
        for (rj, &j) in receivers.iter().enumerate() {
            cost_row[idx(si, rj)] = cost(i, j);
        }
        cost_row[nm] = -1.0;
        lp.add_le(cost_row, 0.0);
    }
    for (rj, &j) in receivers.iter().enumerate() {
        let mut row = vec![0.0; nm + 1];
        for si in 0..senders.len() {
            row[idx(si, rj)] = 1.0;
        }
        lp.add_eq(row, deficit[j] as f64);
    }

    let LpOutcome::Optimal { x, .. } = lp.solve() else {
        unreachable!("balanced remap LP is always feasible and bounded");
    };

    // Round the fractional solution and repair residuals greedily.
    let mut flows = vec![vec![0u64; receivers.len()]; senders.len()];
    for (si, &i) in senders.iter().enumerate() {
        for rj in 0..receivers.len() {
            flows[si][rj] = x[idx(si, rj)].max(0.0).floor() as u64;
            let _ = i;
        }
    }
    let mut sent: Vec<u64> = flows.iter().map(|r| r.iter().sum()).collect();
    let mut recvd: Vec<u64> = (0..receivers.len())
        .map(|rj| flows.iter().map(|r| r[rj]).sum())
        .collect();
    for (si, &i) in senders.iter().enumerate() {
        while sent[si] < surplus[i] {
            let rj = (0..receivers.len())
                .find(|&rj| recvd[rj] < deficit[receivers[rj]])
                .expect("balanced totals");
            flows[si][rj] += 1;
            sent[si] += 1;
            recvd[rj] += 1;
        }
    }

    let mut moves = Vec::new();
    for (si, &i) in senders.iter().enumerate() {
        for (rj, &j) in receivers.iter().enumerate() {
            if flows[si][rj] > 0 {
                moves.push(Move {
                    from: i,
                    to: j,
                    tokens: flows[si][rj],
                });
            }
        }
    }
    let plan = RemapPlan {
        targets,
        moves,
        max_sender_cost: 0.0,
    };
    let max = plan.sender_costs(p).into_iter().fold(0.0f64, f64::max);
    RemapPlan {
        max_sender_cost: max,
        ..plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(tokens: Vec<u64>, node_of: Vec<usize>) -> RemapProblem {
        RemapProblem {
            tokens,
            node_of,
            intra_cost: 1.0,
            inter_cost: 10.0,
        }
    }

    #[test]
    fn already_balanced_needs_no_moves() {
        let p = problem(vec![5, 5, 5, 5], vec![0, 0, 1, 1]);
        let plan = solve_bottleneck(&p);
        assert!(plan.moves.is_empty());
        assert_eq!(plan.max_sender_cost, 0.0);
    }

    #[test]
    fn plan_achieves_targets() {
        let p = problem(vec![10, 2, 7, 1], vec![0, 0, 1, 1]);
        let plan = solve_bottleneck(&p);
        let after = plan.apply(&p.tokens);
        assert_eq!(after, plan.targets);
        assert_eq!(after.iter().sum::<u64>(), 20);
    }

    #[test]
    fn remainder_goes_to_largest_ranks() {
        let p = problem(vec![9, 1, 1], vec![0, 0, 0]);
        // Total 11, avg 3 rem 2: largest ranks (0 first, then ties by index).
        assert_eq!(p.targets(), vec![4, 4, 3]);
    }

    #[test]
    fn intra_matching_is_preferred() {
        // Node 0 internally balanced-able: sender 0 should ship intra only.
        let p = problem(vec![8, 0, 4, 4], vec![0, 0, 1, 1]);
        let plan = solve_bottleneck(&p);
        for m in &plan.moves {
            assert_eq!(
                p.node_of[m.from], p.node_of[m.to],
                "unexpected cross-node move {m:?}"
            );
        }
        assert!((plan.max_sender_cost - 4.0).abs() < 1e-9); // 4 tokens intra.
    }

    #[test]
    fn forced_cross_node_shipping() {
        // Node 0 has all the tokens; node 1 none.
        let p = problem(vec![8, 8, 0, 0], vec![0, 0, 1, 1]);
        let plan = solve_bottleneck(&p);
        let after = plan.apply(&p.tokens);
        assert_eq!(after, vec![4, 4, 4, 4]);
        // Each sender ships 4 cross-node: max cost 40.
        assert!((plan.max_sender_cost - 40.0).abs() < 1e-9);
    }

    #[test]
    fn water_filling_spreads_the_expensive_load() {
        // One giant sender and one small sender on node 0; node 1 needs
        // tokens. The intra deficit should go to the giant sender to shave
        // its (dominant) cost.
        let p = problem(vec![20, 6, 10, 0], vec![0, 0, 1, 1]);
        // Targets: total 36 / 4 = 9 each.
        let plan = solve_bottleneck(&p);
        assert_eq!(plan.apply(&p.tokens), vec![9, 9, 9, 9]);
        // Node 0: surplus 11 (rank0) + 0... rank1 has 6 < 9 so deficit 3.
        // rank0 surplus 11; intra match 3 to rank1; cross 8 to node 1.
        // Cost(rank0) = 3·1 + 8·10 = 83.
        assert!((plan.max_sender_cost - 83.0).abs() < 1e-9, "{plan:?}");
    }

    #[test]
    fn matches_lp_reference_on_small_instances() {
        let cases = vec![
            (vec![10, 2, 7, 1], vec![0, 0, 1, 1]),
            (vec![20, 6, 10, 0], vec![0, 0, 1, 1]),
            (vec![5, 5, 5, 50], vec![0, 0, 1, 1]),
            (vec![12, 0, 0, 0, 4, 0], vec![0, 0, 0, 1, 1, 1]),
            (vec![3, 17, 9, 1, 30, 2], vec![0, 0, 1, 1, 2, 2]),
        ];
        for (tokens, nodes) in cases {
            let p = problem(tokens.clone(), nodes);
            let comb = solve_bottleneck(&p);
            let lp = solve_lp(&p);
            // Integer rounding of the LP may cost up to a few tokens at
            // inter cost; the combinatorial solution must not be worse.
            assert!(
                comb.max_sender_cost <= lp.max_sender_cost + 1e-6,
                "tokens {tokens:?}: comb {} vs lp {}",
                comb.max_sender_cost,
                lp.max_sender_cost
            );
            assert_eq!(comb.apply(&p.tokens), comb.targets);
            assert_eq!(lp.apply(&p.tokens), lp.targets);
        }
    }

    #[test]
    fn lp_and_combinatorial_agree_when_exact() {
        // A case with an integral LP optimum.
        let p = problem(vec![8, 0, 4, 4], vec![0, 0, 1, 1]);
        let comb = solve_bottleneck(&p);
        let lp = solve_lp(&p);
        assert!((comb.max_sender_cost - lp.max_sender_cost).abs() < 1e-6);
    }

    #[test]
    fn single_rank_is_trivial() {
        let p = problem(vec![42], vec![0]);
        let plan = solve_bottleneck(&p);
        assert!(plan.moves.is_empty());
        assert_eq!(plan.targets, vec![42]);
    }

    #[test]
    fn sender_costs_accounting() {
        let p = problem(vec![8, 8, 0, 0], vec![0, 0, 1, 1]);
        let plan = solve_bottleneck(&p);
        let costs = plan.sender_costs(&p);
        assert_eq!(costs.len(), 4);
        assert!(costs[2] == 0.0 && costs[3] == 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_problem_panics() {
        solve_bottleneck(&problem(vec![], vec![]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        solve_bottleneck(&problem(vec![1, 2], vec![0]));
    }
}

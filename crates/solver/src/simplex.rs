//! Dense two-phase primal simplex for small linear programs.
//!
//! This is the reproduction's stand-in for the "standard solver (Gurobi)"
//! the paper uses for its remapping LP (Eq. 2). It solves
//!
//! ```text
//! minimize    c · x
//! subject to  A_eq x  = b_eq
//!             A_le x <= b_le
//!             x >= 0
//! ```
//!
//! with Bland's anti-cycling rule, sized for the instances that arise in
//! remapping (at most a few hundred rows, a few thousand columns). The
//! combinatorial remapping solver in [`crate::bottleneck`] is verified
//! against this LP in tests.

// Indexed loops here walk parallel arrays (tableau columns, per-rank
// slots); iterator rewrites would obscure the math.
#![allow(clippy::needless_range_loop)]

/// Tolerance for zero/feasibility tests.
const EPS: f64 = 1e-9;

/// A linear program in the mixed equality / inequality form above.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    /// Number of decision variables.
    pub n_vars: usize,
    /// Objective coefficients (minimized); length `n_vars`.
    pub objective: Vec<f64>,
    /// Equality rows `(coeffs, rhs)`.
    pub eq: Vec<(Vec<f64>, f64)>,
    /// Inequality rows `(coeffs, rhs)` meaning `coeffs · x <= rhs`.
    pub le: Vec<(Vec<f64>, f64)>,
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal {
        /// Optimal variable assignment.
        x: Vec<f64>,
        /// Optimal objective value.
        value: f64,
    },
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

impl LinearProgram {
    /// Creates an empty LP over `n_vars` variables with a zero objective.
    pub fn new(n_vars: usize) -> Self {
        LinearProgram {
            n_vars,
            objective: vec![0.0; n_vars],
            eq: Vec::new(),
            le: Vec::new(),
        }
    }

    /// Adds an equality constraint.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient vector length differs from `n_vars`.
    pub fn add_eq(&mut self, coeffs: Vec<f64>, rhs: f64) {
        assert_eq!(coeffs.len(), self.n_vars, "coefficient length mismatch");
        self.eq.push((coeffs, rhs));
    }

    /// Adds a `<=` constraint.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient vector length differs from `n_vars`.
    pub fn add_le(&mut self, coeffs: Vec<f64>, rhs: f64) {
        assert_eq!(coeffs.len(), self.n_vars, "coefficient length mismatch");
        self.le.push((coeffs, rhs));
    }

    /// Solves the LP with two-phase simplex.
    pub fn solve(&self) -> LpOutcome {
        let m = self.eq.len() + self.le.len();
        let n_slack = self.le.len();
        let n_struct = self.n_vars + n_slack;
        let n_total = n_struct + m; // + one artificial per row.
        let width = n_total + 1; // + rhs column.

        // Build rows: structural vars, slacks, artificials, rhs.
        let mut t = vec![vec![0.0f64; width]; m + 1];
        let mut basis = vec![0usize; m];
        for (r, (coeffs, rhs)) in self.eq.iter().chain(self.le.iter()).enumerate() {
            let slack_idx = r.checked_sub(self.eq.len());
            let mut rhs = *rhs;
            let mut sign = 1.0;
            if rhs < 0.0 {
                sign = -1.0;
                rhs = -rhs;
            }
            for (j, &c) in coeffs.iter().enumerate() {
                t[r][j] = sign * c;
            }
            if let Some(s) = slack_idx {
                t[r][self.n_vars + s] = sign;
            }
            t[r][n_struct + r] = 1.0; // Artificial.
            t[r][n_total] = rhs;
            basis[r] = n_struct + r;
        }

        // Phase 1 objective: minimize sum of artificials. Reduced-cost row:
        // for non-artificial columns j: -(sum of rows), value -(sum rhs).
        for j in 0..n_struct {
            t[m][j] = -(0..m).map(|r| t[r][j]).sum::<f64>();
        }
        t[m][n_total] = -(0..m).map(|r| t[r][n_total]).sum::<f64>();

        let banned_from = n_struct; // Columns >= this are artificials.
        if !run_simplex(&mut t, &mut basis, n_total, usize::MAX) {
            unreachable!("phase 1 is always bounded");
        }
        if -t[m][n_total] > 1e-7 {
            return LpOutcome::Infeasible;
        }
        // Pivot any artificial still in the basis out on a structural column.
        for r in 0..m {
            if basis[r] >= banned_from {
                if let Some(j) = (0..n_struct).find(|&j| t[r][j].abs() > EPS) {
                    pivot(&mut t, &mut basis, r, j, n_total);
                }
                // If the row is all zeros it is redundant; the artificial
                // stays basic at value 0 and is banned from re-entering.
            }
        }

        // Phase 2: rebuild the objective row from the true costs.
        for j in 0..width {
            t[m][j] = 0.0;
        }
        for (j, &c) in self.objective.iter().enumerate() {
            t[m][j] = c;
        }
        let basis_snapshot = basis.clone();
        for (r, &b) in basis_snapshot.iter().enumerate() {
            let cb = if b < self.n_vars {
                self.objective[b]
            } else {
                0.0
            };
            if cb != 0.0 {
                let row = t[r].clone();
                for (j, cell) in t[m].iter_mut().enumerate() {
                    *cell -= cb * row[j];
                }
            }
        }

        if !run_simplex(&mut t, &mut basis, n_total, banned_from) {
            return LpOutcome::Unbounded;
        }

        let mut x = vec![0.0; self.n_vars];
        for (r, &b) in basis.iter().enumerate() {
            if b < self.n_vars {
                x[b] = t[r][n_total];
            }
        }
        let value = self
            .objective
            .iter()
            .zip(&x)
            .map(|(c, v)| c * v)
            .sum::<f64>();
        LpOutcome::Optimal { x, value }
    }
}

/// Runs simplex iterations on the tableau; returns false on unboundedness.
///
/// Columns with index `>= banned_from` may not enter the basis (used to
/// exclude artificials in phase 2; pass `usize::MAX` to allow all).
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    rhs_col: usize,
    banned_from: usize,
) -> bool {
    let m = basis.len();
    loop {
        // Bland's rule: smallest-index column with negative reduced cost.
        let Some(enter) = (0..rhs_col).find(|&j| j < banned_from && t[m][j] < -EPS) else {
            return true;
        };
        // Ratio test; Bland tie-break on basis index.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for r in 0..m {
            if t[r][enter] > EPS {
                let ratio = t[r][rhs_col] / t[r][enter];
                let better = ratio < best - EPS
                    || (ratio < best + EPS && leave.is_some_and(|l| basis[r] < basis[l]));
                if better {
                    best = ratio;
                    leave = Some(r);
                }
            }
        }
        let Some(leave) = leave else {
            return false; // Unbounded direction.
        };
        pivot(t, basis, leave, enter, rhs_col);
    }
}

/// Pivots the tableau on `(row, col)`.
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, rhs_col: usize) {
    let m = basis.len();
    let p = t[row][col];
    debug_assert!(p.abs() > EPS, "pivot on ~zero element");
    for j in 0..=rhs_col {
        t[row][j] /= p;
    }
    for r in 0..=m {
        if r == row {
            continue;
        }
        let factor = t[r][col];
        if factor.abs() > EPS {
            let src = t[row].clone();
            for (j, cell) in t[r].iter_mut().enumerate() {
                *cell -= factor * src[j];
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expect_optimal(o: LpOutcome) -> (Vec<f64>, f64) {
        match o {
            LpOutcome::Optimal { x, value } => (x, value),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn trivial_bounded_minimum() {
        // min x0 s.t. x0 >= 2 (as -x0 <= -2).
        let mut lp = LinearProgram::new(1);
        lp.objective = vec![1.0];
        lp.add_le(vec![-1.0], -2.0);
        let (x, v) = expect_optimal(lp.solve());
        assert!((x[0] - 2.0).abs() < 1e-7);
        assert!((v - 2.0).abs() < 1e-7);
    }

    #[test]
    fn classic_two_variable_lp() {
        // min -(3x + 5y) s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
        // Optimum at (2, 6), objective -36.
        let mut lp = LinearProgram::new(2);
        lp.objective = vec![-3.0, -5.0];
        lp.add_le(vec![1.0, 0.0], 4.0);
        lp.add_le(vec![0.0, 2.0], 12.0);
        lp.add_le(vec![3.0, 2.0], 18.0);
        let (x, v) = expect_optimal(lp.solve());
        assert!((x[0] - 2.0).abs() < 1e-7, "{x:?}");
        assert!((x[1] - 6.0).abs() < 1e-7, "{x:?}");
        assert!((v + 36.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y s.t. x + y = 10, x <= 4  ->  x=4, y=6, value 16.
        let mut lp = LinearProgram::new(2);
        lp.objective = vec![1.0, 2.0];
        lp.add_eq(vec![1.0, 1.0], 10.0);
        lp.add_le(vec![1.0, 0.0], 4.0);
        let (x, v) = expect_optimal(lp.solve());
        assert!((x[0] - 4.0).abs() < 1e-7);
        assert!((x[1] - 6.0).abs() < 1e-7);
        assert!((v - 16.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasibility() {
        // x = 5 and x <= 3 conflict.
        let mut lp = LinearProgram::new(1);
        lp.add_eq(vec![1.0], 5.0);
        lp.add_le(vec![1.0], 3.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        // min -x with only x >= 0: unbounded.
        let mut lp = LinearProgram::new(1);
        lp.objective = vec![-1.0];
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // min x s.t. -x <= -3 and x <= 10.
        let mut lp = LinearProgram::new(1);
        lp.objective = vec![1.0];
        lp.add_le(vec![-1.0], -3.0);
        lp.add_le(vec![1.0], 10.0);
        let (x, _) = expect_optimal(lp.solve());
        assert!((x[0] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn redundant_equalities_are_tolerated() {
        // x + y = 4 stated twice.
        let mut lp = LinearProgram::new(2);
        lp.objective = vec![1.0, 3.0];
        lp.add_eq(vec![1.0, 1.0], 4.0);
        lp.add_eq(vec![1.0, 1.0], 4.0);
        let (x, v) = expect_optimal(lp.solve());
        assert!((x[0] - 4.0).abs() < 1e-7);
        assert!((v - 4.0).abs() < 1e-7);
    }

    #[test]
    fn minmax_via_epigraph_variable() {
        // The remapping pattern: minimize t with a·x1 <= t, b·x2 <= t and
        // x1 = 4, x2 = 2, a=1, b=3  ->  t = max(4, 6) = 6.
        let mut lp = LinearProgram::new(3); // x1, x2, t.
        lp.objective = vec![0.0, 0.0, 1.0];
        lp.add_eq(vec![1.0, 0.0, 0.0], 4.0);
        lp.add_eq(vec![0.0, 1.0, 0.0], 2.0);
        lp.add_le(vec![1.0, 0.0, -1.0], 0.0);
        lp.add_le(vec![0.0, 3.0, -1.0], 0.0);
        let (_, v) = expect_optimal(lp.solve());
        assert!((v - 6.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple constraints active at origin; Bland must not cycle.
        let mut lp = LinearProgram::new(2);
        lp.objective = vec![-1.0, -1.0];
        lp.add_le(vec![1.0, 0.0], 0.0);
        lp.add_le(vec![0.0, 1.0], 0.0);
        lp.add_le(vec![1.0, 1.0], 0.0);
        let (x, v) = expect_optimal(lp.solve());
        assert!(x[0].abs() < 1e-9 && x[1].abs() < 1e-9);
        assert!(v.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_width_panics() {
        LinearProgram::new(2).add_eq(vec![1.0], 0.0);
    }
}

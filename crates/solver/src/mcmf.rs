//! Min-cost max-flow via successive shortest paths with potentials.
//!
//! Integer capacities and costs; Dijkstra with Johnson potentials keeps
//! reduced costs non-negative, so the solver is exact for graphs whose
//! initial costs are non-negative (all graphs built by this crate).

/// Edge handle returned by [`MinCostFlow::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: i64,
    cost: i64,
    flow: i64,
}

/// A min-cost max-flow problem instance.
#[derive(Debug, Clone, Default)]
pub struct MinCostFlow {
    /// `graph[v]` lists indices into `edges` (even = forward, odd = back).
    graph: Vec<Vec<usize>>,
    edges: Vec<Edge>,
}

/// Result of a flow computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowResult {
    /// Total flow routed.
    pub flow: i64,
    /// Total cost of the routed flow.
    pub cost: i64,
}

impl MinCostFlow {
    /// Creates an instance with `n` nodes.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            graph: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.len()
    }

    /// Adds a directed edge `u -> v` with capacity `cap` and per-unit `cost`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range nodes, negative capacity, or negative cost
    /// (potentials require non-negative initial costs).
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: i64) -> EdgeId {
        assert!(
            u < self.graph.len() && v < self.graph.len(),
            "node out of range"
        );
        assert!(cap >= 0, "capacity must be non-negative");
        assert!(cost >= 0, "cost must be non-negative");
        let id = self.edges.len();
        self.graph[u].push(id);
        self.edges.push(Edge {
            to: v,
            cap,
            cost,
            flow: 0,
        });
        self.graph[v].push(id + 1);
        self.edges.push(Edge {
            to: u,
            cap: 0,
            cost: -cost,
            flow: 0,
        });
        EdgeId(id)
    }

    /// Flow currently assigned to a forward edge.
    pub fn flow_on(&self, e: EdgeId) -> i64 {
        self.edges[e.0].flow
    }

    /// Computes the min-cost max-flow from `s` to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn solve(&mut self, s: usize, t: usize) -> FlowResult {
        assert!(
            s < self.graph.len() && t < self.graph.len(),
            "node out of range"
        );
        assert_ne!(s, t, "source equals sink");
        let n = self.graph.len();
        let mut potential = vec![0i64; n];
        let mut total_flow = 0i64;
        let mut total_cost = 0i64;

        loop {
            // Dijkstra on reduced costs.
            const INF: i64 = i64::MAX / 4;
            let mut dist = vec![INF; n];
            let mut prev_edge = vec![usize::MAX; n];
            dist[s] = 0;
            let mut heap = std::collections::BinaryHeap::new();
            heap.push(std::cmp::Reverse((0i64, s)));
            while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                for &ei in &self.graph[u] {
                    let e = &self.edges[ei];
                    if e.cap - e.flow <= 0 {
                        continue;
                    }
                    let nd = d + e.cost + potential[u] - potential[e.to];
                    debug_assert!(
                        e.cost + potential[u] - potential[e.to] >= 0,
                        "negative reduced cost"
                    );
                    if nd < dist[e.to] {
                        dist[e.to] = nd;
                        prev_edge[e.to] = ei;
                        heap.push(std::cmp::Reverse((nd, e.to)));
                    }
                }
            }
            if dist[t] >= INF {
                break; // No augmenting path remains.
            }
            for v in 0..n {
                if dist[v] < INF {
                    potential[v] += dist[v];
                }
            }
            // Find bottleneck along the path.
            let mut push = i64::MAX;
            let mut v = t;
            while v != s {
                let ei = prev_edge[v];
                push = push.min(self.edges[ei].cap - self.edges[ei].flow);
                v = self.edges[ei ^ 1].to;
            }
            // Apply.
            let mut v = t;
            while v != s {
                let ei = prev_edge[v];
                self.edges[ei].flow += push;
                self.edges[ei ^ 1].flow -= push;
                total_cost += push * self.edges[ei].cost;
                v = self.edges[ei ^ 1].to;
            }
            total_flow += push;
        }

        FlowResult {
            flow: total_flow,
            cost: total_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = MinCostFlow::new(2);
        let e = g.add_edge(0, 1, 5, 3);
        let r = g.solve(0, 1);
        assert_eq!(r, FlowResult { flow: 5, cost: 15 });
        assert_eq!(g.flow_on(e), 5);
    }

    #[test]
    fn prefers_cheap_path_first() {
        // Two parallel 0->1 paths: cheap cap 3 cost 1, pricey cap 3 cost 10.
        let mut g = MinCostFlow::new(2);
        let cheap = g.add_edge(0, 1, 3, 1);
        let pricey = g.add_edge(0, 1, 3, 10);
        let r = g.solve(0, 1);
        assert_eq!(r.flow, 6);
        assert_eq!(r.cost, 3 + 3 * 10);
        assert_eq!(g.flow_on(cheap), 3);
        assert_eq!(g.flow_on(pricey), 3);
    }

    #[test]
    fn rerouting_through_residual_edges() {
        // Classic diamond where optimal flow must "undo" a greedy choice.
        //   0 -> 1 (cap 1, cost 1), 0 -> 2 (cap 1, cost 3),
        //   1 -> 2 (cap 1, cost 0), 1 -> 3 (cap 1, cost 3),
        //   2 -> 3 (cap 1, cost 1).
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1, 1);
        g.add_edge(0, 2, 1, 3);
        g.add_edge(1, 2, 1, 0);
        g.add_edge(1, 3, 1, 3);
        g.add_edge(2, 3, 1, 1);
        let r = g.solve(0, 3);
        assert_eq!(r.flow, 2);
        // Optimal: 0-1-2-3 (cost 2) + 0-2?cap taken... routes 0-1-3 (4) and
        // 0-2-3 (4): total 8; vs 0-1-2-3 (2) + 0-2(3)->3 blocked by cap on
        // 2-3... cap(2->3)=1 so best is flow1: 0-1-2-3 cost 2, flow2:
        // 0-2 cost3 then 2->3 full -> must go ... no path. Actually flow2 =
        // 0-1? cap used. So max flow 2 uses 0-1-3 and 0-2-3: cost 4+4=8.
        assert_eq!(r.cost, 8);
    }

    #[test]
    fn disconnected_sink_yields_zero() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 4, 2);
        let r = g.solve(0, 2);
        assert_eq!(r, FlowResult { flow: 0, cost: 0 });
    }

    #[test]
    fn respects_capacity_bottleneck() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 10, 1);
        g.add_edge(1, 2, 4, 1);
        let r = g.solve(0, 2);
        assert_eq!(r.flow, 4);
        assert_eq!(r.cost, 8);
    }

    #[test]
    fn flow_conservation_holds() {
        let mut g = MinCostFlow::new(6);
        let mut edges = Vec::new();
        let arcs = [
            (0, 1, 7, 2),
            (0, 2, 5, 4),
            (1, 3, 4, 1),
            (1, 4, 5, 3),
            (2, 3, 3, 2),
            (2, 4, 4, 1),
            (3, 5, 6, 2),
            (4, 5, 8, 1),
        ];
        for &(u, v, c, w) in &arcs {
            edges.push(((u, v), g.add_edge(u, v, c, w)));
        }
        let r = g.solve(0, 5);
        assert!(r.flow > 0);
        // Net flow at interior nodes is zero.
        for node in 1..5 {
            let mut net = 0i64;
            for &((u, v), e) in &edges {
                if v == node {
                    net += g.flow_on(e);
                }
                if u == node {
                    net -= g.flow_on(e);
                }
            }
            assert_eq!(net, 0, "conservation violated at {node}");
        }
        // No edge exceeds capacity.
        for &((u, v), e) in &edges {
            let cap = arcs
                .iter()
                .find(|&&(a, b, _, _)| (a, b) == (u, v))
                .unwrap()
                .2;
            assert!(g.flow_on(e) <= cap && g.flow_on(e) >= 0);
        }
    }

    #[test]
    #[should_panic(expected = "source equals sink")]
    fn same_source_sink_panics() {
        MinCostFlow::new(2).solve(1, 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_panics() {
        MinCostFlow::new(2).add_edge(0, 1, 1, -1);
    }
}

//! The wire protocol: one JSON object per line, request → response.
//!
//! Requests (`op` selects the verb; unknown fields are ignored):
//!
//! ```json
//! {"op":"plan","seqs":[9000,500],"method":"zeppelin","model":"3b","cluster":"a","nodes":2,"deadline_ms":250}
//! {"op":"audit","plan":{...}}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! `method`/`model`/`cluster`/`nodes` are optional on `plan`; the server
//! falls back to its configured defaults. `deadline_ms` is the client's
//! remaining latency budget, *relative* to when the server finishes reading
//! the request (relative so clock skew cannot expire it in flight); the
//! server propagates it through queueing, planning, and the response write,
//! answering `deadline_exceeded` instead of shipping a stale plan.
//!
//! Responses always carry `"ok"`; failures also carry a machine-readable
//! `"code"` (an [`ErrorCode`]) so clients can distinguish *typed server
//! verdicts* (never retried) from transport failures (retryable):
//!
//! ```json
//! {"ok":true,"cached":true,"degraded":false,"plan_us":12,"plan":{...}}
//! {"ok":true,"stats":{...}}
//! {"ok":true,"shutting_down":true}
//! {"ok":false,"code":"deadline_exceeded","error":"..."}
//! ```

use zeppelin_core::plan::IterationPlan;
use zeppelin_core::plan_io::{parse_json, plan_to_json, Json};

use crate::metrics::MetricsSnapshot;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Plan a batch of sequence lengths.
    Plan {
        /// Sequence lengths (all positive).
        seqs: Vec<u64>,
        /// Scheduler name; `None` = server default.
        method: Option<String>,
        /// Model preset; `None` = server default.
        model: Option<String>,
        /// Cluster preset; `None` = server default.
        cluster: Option<String>,
        /// Node count; `None` = server default.
        nodes: Option<usize>,
        /// Remaining latency budget in milliseconds, relative to request
        /// arrival; `None` = no deadline.
        deadline_ms: Option<u64>,
    },
    /// Audit a client-supplied plan document against the server's
    /// configured context; replies with the violation report.
    Audit {
        /// The plan as raw JSON text (re-parsed and audited server-side).
        plan: String,
    },
    /// Report service metrics.
    Stats,
    /// Drain and stop the server.
    Shutdown,
}

/// Upper bound on `seqs` entries in one plan request. A line under the
/// transport's size cap could still smuggle tens of millions of tiny
/// lengths; planning that would stall a worker, so the protocol rejects it
/// up front.
pub const MAX_SEQS: usize = 65_536;

/// Machine-readable failure classes carried in every error response.
///
/// Clients must treat all of these as final verdicts — a typed error means
/// the server is alive and has decided; retrying the identical request buys
/// nothing (and for `overloaded`/`shutting_down` actively makes it worse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON, unknown op, or invalid fields.
    BadRequest,
    /// Planning itself failed (typed `PlanError` from the scheduler).
    PlanFailed,
    /// The served or audited plan failed the audit layer.
    AuditFailed,
    /// Backpressure: the connection queue was full at accept time.
    Overloaded,
    /// The request's deadline expired before the response could ship.
    DeadlineExceeded,
    /// The planner panicked while serving this request; the panic was
    /// contained and the worker pool is intact.
    WorkerPanicked,
    /// The server is draining; the request arrived past the grace period.
    ShuttingDown,
    /// The client dribbled or stalled a frame past the per-frame budget.
    SlowClient,
    /// A request line exceeded the frame size cap (the stream has been
    /// resynchronized at the next newline).
    FrameOversized,
}

impl ErrorCode {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::PlanFailed => "plan_failed",
            ErrorCode::AuditFailed => "audit_failed",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::WorkerPanicked => "worker_panicked",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::SlowClient => "slow_client",
            ErrorCode::FrameOversized => "frame_oversized",
        }
    }

    /// Parses a wire spelling back to the code (for clients and tests).
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "plan_failed" => ErrorCode::PlanFailed,
            "audit_failed" => ErrorCode::AuditFailed,
            "overloaded" => ErrorCode::Overloaded,
            "deadline_exceeded" => ErrorCode::DeadlineExceeded,
            "worker_panicked" => ErrorCode::WorkerPanicked,
            "shutting_down" => ErrorCode::ShuttingDown,
            "slow_client" => ErrorCode::SlowClient,
            "frame_oversized" => ErrorCode::FrameOversized,
            _ => return None,
        })
    }
}

fn opt_string(root: &Json, key: &str) -> Result<Option<String>, String> {
    match root.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("'{key}' must be a string")),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, unknown ops, or
/// invalid fields; the server wraps it in a `bad_request` error response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let root = parse_json(line).map_err(|e| e.to_string())?;
    let op = root
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request needs a string 'op' field")?;
    match op {
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "plan" => {
            let raw = root
                .get("seqs")
                .and_then(Json::as_array)
                .ok_or("'plan' needs a 'seqs' array of lengths")?;
            if raw.is_empty() {
                return Err("'seqs' must not be empty".to_string());
            }
            if raw.len() > MAX_SEQS {
                return Err(format!(
                    "'seqs' has {} entries, over the {MAX_SEQS} limit",
                    raw.len()
                ));
            }
            let mut seqs = Vec::with_capacity(raw.len());
            for v in raw {
                match v.as_u64() {
                    Some(len) if len > 0 => seqs.push(len),
                    _ => return Err("'seqs' entries must be positive integers".to_string()),
                }
            }
            let nodes = match root.get("nodes") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or("'nodes' must be a positive integer")?
                        .max(1) as usize,
                ),
            };
            let deadline_ms = match root.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or("'deadline_ms' must be a non-negative integer")?,
                ),
            };
            Ok(Request::Plan {
                seqs,
                method: opt_string(&root, "method")?,
                model: opt_string(&root, "model")?,
                cluster: opt_string(&root, "cluster")?,
                nodes,
                deadline_ms,
            })
        }
        "audit" => match root.get("plan") {
            Some(v @ Json::Object(_)) => Ok(Request::Audit {
                plan: v.to_string(),
            }),
            Some(_) => Err("'plan' must be an object".to_string()),
            None => Err("'audit' needs a 'plan' object".to_string()),
        },
        other => Err(format!("unknown op '{other}'")),
    }
}

impl Request {
    /// Serializes the request to its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Stats => "{\"op\":\"stats\"}".to_string(),
            Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
            Request::Audit { plan } => format!("{{\"op\":\"audit\",\"plan\":{plan}}}"),
            Request::Plan {
                seqs,
                method,
                model,
                cluster,
                nodes,
                deadline_ms,
            } => {
                let mut out = String::from("{\"op\":\"plan\"");
                let lens: Vec<String> = seqs.iter().map(u64::to_string).collect();
                out.push_str(&format!(",\"seqs\":[{}]", lens.join(",")));
                for (key, val) in [("method", method), ("model", model), ("cluster", cluster)] {
                    if let Some(v) = val {
                        out.push_str(&format!(",\"{key}\":{}", Json::String(v.clone())));
                    }
                }
                if let Some(n) = nodes {
                    out.push_str(&format!(",\"nodes\":{n}"));
                }
                if let Some(d) = deadline_ms {
                    out.push_str(&format!(",\"deadline_ms\":{d}"));
                }
                out.push('}');
                out
            }
        }
    }

    /// A plan request with every optional field defaulted — the common case
    /// in tests and exhibits.
    pub fn plan(seqs: Vec<u64>) -> Request {
        Request::Plan {
            seqs,
            method: None,
            model: None,
            cluster: None,
            nodes: None,
            deadline_ms: None,
        }
    }
}

/// Builds the success response for a served plan. `degraded` marks a plan
/// produced by the fallback scheduler under load shedding or an open
/// circuit breaker.
pub fn plan_response(plan: &IterationPlan, cached: bool, degraded: bool, plan_us: u64) -> String {
    format!(
        "{{\"ok\":true,\"cached\":{cached},\"degraded\":{degraded},\"plan_us\":{plan_us},\"plan\":{}}}",
        plan_to_json(plan)
    )
}

/// Builds the success response for a stats request.
pub fn stats_response(s: &MetricsSnapshot) -> String {
    format!(
        "{{\"ok\":true,\"stats\":{{\"plan_requests\":{},\"cache_hits\":{},\"hit_rate\":{:.4},\
         \"stats_requests\":{},\"errors\":{},\"rejected\":{},\"queue_depth\":{},\
         \"shed\":{},\"degraded\":{},\"deadline_exceeded\":{},\"worker_panics\":{},\
         \"worker_respawns\":{},\"breaker_trips\":{},\"slow_clients\":{},\"shutting_down\":{},\
         \"planner_runs\":{},\"coalesced\":{},\
         \"p50_us\":{},\"p99_us\":{},\"p999_us\":{}}}}}",
        s.plan_requests,
        s.cache_hits,
        s.hit_rate(),
        s.stats_requests,
        s.errors,
        s.rejected,
        s.queue_depth,
        s.shed,
        s.degraded,
        s.deadline_exceeded,
        s.worker_panics,
        s.worker_respawns,
        s.breaker_trips,
        s.slow_clients,
        s.shutting_down,
        s.planner_runs,
        s.coalesced,
        s.p50_us,
        s.p99_us,
        s.p999_us,
    )
}

/// Builds the shutdown acknowledgement.
pub fn shutdown_response() -> String {
    "{\"ok\":true,\"shutting_down\":true}".to_string()
}

/// Builds an untyped (legacy `bad_request`) error response.
pub fn error_response(message: &str) -> String {
    typed_error(ErrorCode::BadRequest, message)
}

/// Builds a typed error response carrying a machine-readable code.
pub fn typed_error(code: ErrorCode, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"code\":{},\"error\":{}}}",
        Json::String(code.as_str().to_string()),
        Json::String(message.to_string())
    )
}

/// Extracts the [`ErrorCode`] from a parsed response line, if it is a typed
/// error.
pub fn response_error_code(line: &str) -> Option<ErrorCode> {
    let v = parse_json(line).ok()?;
    if v.get("ok") != Some(&Json::Bool(false)) {
        return None;
    }
    v.get("code")
        .and_then(Json::as_str)
        .and_then(ErrorCode::parse)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_their_wire_lines() {
        let reqs = [
            Request::Stats,
            Request::Shutdown,
            Request::Plan {
                seqs: vec![9000, 500],
                method: Some("te".into()),
                model: None,
                cluster: Some("b".into()),
                nodes: Some(4),
                deadline_ms: Some(250),
            },
            Request::plan(vec![1]),
        ];
        for req in reqs {
            assert_eq!(
                parse_request(&req.to_line()).unwrap(),
                req,
                "{}",
                req.to_line()
            );
        }
    }

    #[test]
    fn audit_requests_round_trip_their_embedded_plan() {
        use zeppelin_core::plan::{IterationPlan, PlanOptions};
        use zeppelin_core::plan_io::plan_from_json;
        let plan = IterationPlan {
            scheduler: "wire-test".into(),
            placements: vec![],
            options: PlanOptions::default(),
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        };
        let req = Request::Audit {
            plan: plan_to_json(&plan),
        };
        // The Json tree re-renders object keys sorted, so compare the
        // parsed plans rather than the raw strings.
        let Request::Audit { plan: wired } = parse_request(&req.to_line()).unwrap() else {
            panic!("audit request parses as audit");
        };
        assert_eq!(plan_from_json(&wired).unwrap(), plan);
    }

    #[test]
    fn malformed_requests_are_named_errors() {
        for (line, needle) in [
            ("{", "JSON parse error"),
            ("{\"seqs\":[1]}", "'op'"),
            ("{\"op\":\"fly\"}", "unknown op"),
            ("{\"op\":\"plan\"}", "'seqs'"),
            ("{\"op\":\"plan\",\"seqs\":[]}", "empty"),
            ("{\"op\":\"plan\",\"seqs\":[0]}", "positive"),
            ("{\"op\":\"plan\",\"seqs\":[1.5]}", "positive"),
            ("{\"op\":\"plan\",\"seqs\":[1],\"nodes\":\"x\"}", "'nodes'"),
            ("{\"op\":\"plan\",\"seqs\":[1],\"method\":7}", "'method'"),
            (
                "{\"op\":\"plan\",\"seqs\":[1],\"deadline_ms\":\"soon\"}",
                "'deadline_ms'",
            ),
            ("{\"op\":\"audit\"}", "'plan'"),
            ("{\"op\":\"audit\",\"plan\":7}", "'plan'"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} → {err}");
        }
        // A hostile request flooding 'seqs' is rejected by count, before
        // any per-entry work.
        let flood = format!(
            "{{\"op\":\"plan\",\"seqs\":[{}]}}",
            "1,".repeat(MAX_SEQS) + "1"
        );
        let err = parse_request(&flood).unwrap_err();
        assert!(err.contains("limit"), "{err}");
    }

    #[test]
    fn responses_are_parseable_json_lines() {
        use zeppelin_core::plan_io::parse_json;
        let snap = MetricsSnapshot {
            plan_requests: 10,
            cache_hits: 9,
            degraded: 2,
            deadline_exceeded: 1,
            ..MetricsSnapshot::default()
        };
        let line = stats_response(&snap);
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(9));
        assert_eq!(stats.get("hit_rate").unwrap().as_f64(), Some(0.9));
        assert_eq!(stats.get("degraded").unwrap().as_u64(), Some(2));
        assert_eq!(stats.get("deadline_exceeded").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("p999_us").unwrap().as_u64(), Some(0));

        let err = error_response("bad \"thing\"\n");
        let v = parse_json(&err).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(v.get("error").unwrap().as_str(), Some("bad \"thing\"\n"));
        assert!(!err.contains('\n'), "responses must stay single-line");

        let v = parse_json(&shutdown_response()).unwrap();
        assert_eq!(v.get("shutting_down"), Some(&Json::Bool(true)));
    }

    #[test]
    fn typed_errors_carry_round_trippable_codes() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::PlanFailed,
            ErrorCode::AuditFailed,
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::WorkerPanicked,
            ErrorCode::ShuttingDown,
            ErrorCode::SlowClient,
            ErrorCode::FrameOversized,
        ] {
            let line = typed_error(code, "why");
            assert_eq!(response_error_code(&line), Some(code), "{line}");
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("weather"), None);
        // Success lines and non-JSON lines carry no code.
        assert_eq!(response_error_code(&shutdown_response()), None);
        assert_eq!(response_error_code("not json"), None);
    }
}

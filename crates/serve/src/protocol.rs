//! The wire protocol: one JSON object per line, request → response.
//!
//! Requests (`op` selects the verb; unknown fields are ignored):
//!
//! ```json
//! {"op":"plan","seqs":[9000,500],"method":"zeppelin","model":"3b","cluster":"a","nodes":2}
//! {"op":"audit","plan":{...}}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! `method`/`model`/`cluster`/`nodes` are optional on `plan`; the server
//! falls back to its configured defaults. Responses always carry `"ok"`:
//!
//! ```json
//! {"ok":true,"cached":true,"plan_us":12,"plan":{...}}
//! {"ok":true,"stats":{...}}
//! {"ok":true,"shutting_down":true}
//! {"ok":false,"error":"..."}
//! ```

use zeppelin_core::plan::IterationPlan;
use zeppelin_core::plan_io::{parse_json, plan_to_json, Json};

use crate::metrics::MetricsSnapshot;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Plan a batch of sequence lengths.
    Plan {
        /// Sequence lengths (all positive).
        seqs: Vec<u64>,
        /// Scheduler name; `None` = server default.
        method: Option<String>,
        /// Model preset; `None` = server default.
        model: Option<String>,
        /// Cluster preset; `None` = server default.
        cluster: Option<String>,
        /// Node count; `None` = server default.
        nodes: Option<usize>,
    },
    /// Audit a client-supplied plan document against the server's
    /// configured context; replies with the violation report.
    Audit {
        /// The plan as raw JSON text (re-parsed and audited server-side).
        plan: String,
    },
    /// Report service metrics.
    Stats,
    /// Drain and stop the server.
    Shutdown,
}

/// Upper bound on `seqs` entries in one plan request. A line under the
/// transport's size cap could still smuggle tens of millions of tiny
/// lengths; planning that would stall a worker, so the protocol rejects it
/// up front.
pub const MAX_SEQS: usize = 65_536;

fn opt_string(root: &Json, key: &str) -> Result<Option<String>, String> {
    match root.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("'{key}' must be a string")),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, unknown ops, or
/// invalid fields; the server wraps it in an error response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let root = parse_json(line).map_err(|e| e.to_string())?;
    let op = root
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request needs a string 'op' field")?;
    match op {
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "plan" => {
            let raw = root
                .get("seqs")
                .and_then(Json::as_array)
                .ok_or("'plan' needs a 'seqs' array of lengths")?;
            if raw.is_empty() {
                return Err("'seqs' must not be empty".to_string());
            }
            if raw.len() > MAX_SEQS {
                return Err(format!(
                    "'seqs' has {} entries, over the {MAX_SEQS} limit",
                    raw.len()
                ));
            }
            let mut seqs = Vec::with_capacity(raw.len());
            for v in raw {
                match v.as_u64() {
                    Some(len) if len > 0 => seqs.push(len),
                    _ => return Err("'seqs' entries must be positive integers".to_string()),
                }
            }
            let nodes = match root.get("nodes") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or("'nodes' must be a positive integer")?
                        .max(1) as usize,
                ),
            };
            Ok(Request::Plan {
                seqs,
                method: opt_string(&root, "method")?,
                model: opt_string(&root, "model")?,
                cluster: opt_string(&root, "cluster")?,
                nodes,
            })
        }
        "audit" => match root.get("plan") {
            Some(v @ Json::Object(_)) => Ok(Request::Audit {
                plan: v.to_string(),
            }),
            Some(_) => Err("'plan' must be an object".to_string()),
            None => Err("'audit' needs a 'plan' object".to_string()),
        },
        other => Err(format!("unknown op '{other}'")),
    }
}

impl Request {
    /// Serializes the request to its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Stats => "{\"op\":\"stats\"}".to_string(),
            Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
            Request::Audit { plan } => format!("{{\"op\":\"audit\",\"plan\":{plan}}}"),
            Request::Plan {
                seqs,
                method,
                model,
                cluster,
                nodes,
            } => {
                let mut out = String::from("{\"op\":\"plan\"");
                let lens: Vec<String> = seqs.iter().map(u64::to_string).collect();
                out.push_str(&format!(",\"seqs\":[{}]", lens.join(",")));
                for (key, val) in [("method", method), ("model", model), ("cluster", cluster)] {
                    if let Some(v) = val {
                        out.push_str(&format!(",\"{key}\":{}", Json::String(v.clone())));
                    }
                }
                if let Some(n) = nodes {
                    out.push_str(&format!(",\"nodes\":{n}"));
                }
                out.push('}');
                out
            }
        }
    }
}

/// Builds the success response for a served plan.
pub fn plan_response(plan: &IterationPlan, cached: bool, plan_us: u64) -> String {
    format!(
        "{{\"ok\":true,\"cached\":{cached},\"plan_us\":{plan_us},\"plan\":{}}}",
        plan_to_json(plan)
    )
}

/// Builds the success response for a stats request.
pub fn stats_response(s: &MetricsSnapshot) -> String {
    format!(
        "{{\"ok\":true,\"stats\":{{\"plan_requests\":{},\"cache_hits\":{},\"hit_rate\":{:.4},\
         \"stats_requests\":{},\"errors\":{},\"rejected\":{},\"queue_depth\":{},\
         \"p50_us\":{},\"p99_us\":{}}}}}",
        s.plan_requests,
        s.cache_hits,
        s.hit_rate(),
        s.stats_requests,
        s.errors,
        s.rejected,
        s.queue_depth,
        s.p50_us,
        s.p99_us,
    )
}

/// Builds the shutdown acknowledgement.
pub fn shutdown_response() -> String {
    "{\"ok\":true,\"shutting_down\":true}".to_string()
}

/// Builds an error response.
pub fn error_response(message: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":{}}}",
        Json::String(message.to_string())
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_their_wire_lines() {
        let reqs = [
            Request::Stats,
            Request::Shutdown,
            Request::Plan {
                seqs: vec![9000, 500],
                method: Some("te".into()),
                model: None,
                cluster: Some("b".into()),
                nodes: Some(4),
            },
            Request::Plan {
                seqs: vec![1],
                method: None,
                model: None,
                cluster: None,
                nodes: None,
            },
        ];
        for req in reqs {
            assert_eq!(
                parse_request(&req.to_line()).unwrap(),
                req,
                "{}",
                req.to_line()
            );
        }
    }

    #[test]
    fn audit_requests_round_trip_their_embedded_plan() {
        use zeppelin_core::plan::{IterationPlan, PlanOptions};
        use zeppelin_core::plan_io::plan_from_json;
        let plan = IterationPlan {
            scheduler: "wire-test".into(),
            placements: vec![],
            options: PlanOptions::default(),
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        };
        let req = Request::Audit {
            plan: plan_to_json(&plan),
        };
        // The Json tree re-renders object keys sorted, so compare the
        // parsed plans rather than the raw strings.
        let Request::Audit { plan: wired } = parse_request(&req.to_line()).unwrap() else {
            panic!("audit request parses as audit");
        };
        assert_eq!(plan_from_json(&wired).unwrap(), plan);
    }

    #[test]
    fn malformed_requests_are_named_errors() {
        for (line, needle) in [
            ("{", "JSON parse error"),
            ("{\"seqs\":[1]}", "'op'"),
            ("{\"op\":\"fly\"}", "unknown op"),
            ("{\"op\":\"plan\"}", "'seqs'"),
            ("{\"op\":\"plan\",\"seqs\":[]}", "empty"),
            ("{\"op\":\"plan\",\"seqs\":[0]}", "positive"),
            ("{\"op\":\"plan\",\"seqs\":[1.5]}", "positive"),
            ("{\"op\":\"plan\",\"seqs\":[1],\"nodes\":\"x\"}", "'nodes'"),
            ("{\"op\":\"plan\",\"seqs\":[1],\"method\":7}", "'method'"),
            ("{\"op\":\"audit\"}", "'plan'"),
            ("{\"op\":\"audit\",\"plan\":7}", "'plan'"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} → {err}");
        }
        // A hostile request flooding 'seqs' is rejected by count, before
        // any per-entry work.
        let flood = format!(
            "{{\"op\":\"plan\",\"seqs\":[{}]}}",
            "1,".repeat(MAX_SEQS) + "1"
        );
        let err = parse_request(&flood).unwrap_err();
        assert!(err.contains("limit"), "{err}");
    }

    #[test]
    fn responses_are_parseable_json_lines() {
        use zeppelin_core::plan_io::parse_json;
        let snap = MetricsSnapshot {
            plan_requests: 10,
            cache_hits: 9,
            ..MetricsSnapshot::default()
        };
        let line = stats_response(&snap);
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(9));
        assert_eq!(stats.get("hit_rate").unwrap().as_f64(), Some(0.9));

        let err = error_response("bad \"thing\"\n");
        let v = parse_json(&err).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(v.get("error").unwrap().as_str(), Some("bad \"thing\"\n"));
        assert!(!err.contains('\n'), "responses must stay single-line");

        let v = parse_json(&shutdown_response()).unwrap();
        assert_eq!(v.get("shutting_down"), Some(&Json::Bool(true)));
    }
}

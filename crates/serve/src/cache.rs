//! The canonicalizing plan cache.
//!
//! Key = (scheduler name, sorted length multiset, quantized context
//! signature). Value = the plan computed for the *canonical* batch, tagged
//! with whether its placements reference real sequences. Hits for
//! index-faithful plans are re-indexed through the requesting batch's sort
//! permutation; synthetic-id plans (packing windows) are returned verbatim
//! — they only depend on the multiset in the first place.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};
use std::sync::{Arc, Mutex};

use zeppelin_core::plan::{IterationPlan, PlanError};
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_data::batch::Batch;

use crate::canonical::{is_index_faithful, reindex_plan, CanonicalBatch, CtxSignature};

/// Cache key: everything that can change a plan.
///
/// Hashing goes through a digest precomputed in [`PlanKey::new`] — hit-path
/// lookups must not re-feed a multi-thousand-entry length vector through
/// SipHash on every request, or key hashing grows with batch size just like
/// planning does. Equality still compares the full fields, so a digest
/// collision costs one memcmp, never a wrong plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanKey {
    /// Scheduler name (encodes ablation toggles — each variant has one).
    pub scheduler: String,
    /// Sorted (descending) sequence lengths.
    pub lens: Vec<u64>,
    /// Quantized context signature.
    pub ctx: CtxSignature,
    digest: u64,
}

impl Hash for PlanKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.digest);
    }
}

/// A pass-through hasher for keys that already carry a precomputed digest.
///
/// [`PlanKey::hash`] feeds exactly one `u64` — the digest mixed in
/// [`PlanKey::new`] — so running it through SipHash again is pure overhead.
/// This hasher returns that word verbatim; the map's bucket index comes
/// straight from the stored digest.
#[derive(Debug, Default, Clone, Copy)]
pub struct DigestHasher(u64);

impl Hasher for DigestHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PlanKey hashes exactly one precomputed u64 digest");
    }

    fn write_u64(&mut self, digest: u64) {
        self.0 = digest;
    }
}

/// `BuildHasher` handing out [`DigestHasher`]s.
#[derive(Debug, Default, Clone, Copy)]
pub struct DigestHasherBuilder;

impl BuildHasher for DigestHasherBuilder {
    type Hasher = DigestHasher;

    fn build_hasher(&self) -> DigestHasher {
        DigestHasher::default()
    }
}

impl PlanKey {
    /// Builds the key and the canonicalization it derives from.
    pub fn new(scheduler: &str, batch: &Batch, ctx: &SchedulerCtx) -> (PlanKey, CanonicalBatch) {
        let canonical = CanonicalBatch::new(batch);
        let ctx = CtxSignature::new(ctx);
        let digest = {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            scheduler.hash(&mut h);
            ctx.hash(&mut h);
            // FNV-1a over whole words: one multiply per length instead of
            // SipHash over the raw bytes.
            let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
            for &len in &canonical.lens {
                acc = (acc ^ len).wrapping_mul(0x0000_0100_0000_01b3);
            }
            acc.hash(&mut h);
            h.finish()
        };
        let key = PlanKey {
            scheduler: scheduler.to_string(),
            lens: canonical.lens.clone(),
            ctx,
            digest,
        };
        (key, canonical)
    }

    /// The precomputed FNV-mixed digest (stable for this key's lifetime).
    ///
    /// The cache's hash map consumes the low bits through
    /// [`DigestHasherBuilder`]; [`ShardedPlanCache`] picks its shard from the
    /// high bits so shard choice and bucket choice stay independent.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

/// A cached canonical plan.
#[derive(Debug)]
pub struct CachedPlan {
    /// Plan for the canonical (descending) batch.
    pub plan: Arc<IterationPlan>,
    /// Whether `seq_index` references real sequences (re-indexable).
    pub faithful: bool,
}

impl CachedPlan {
    /// Wraps a freshly planned canonical plan, tagging faithfulness.
    pub fn new(plan: IterationPlan, lens: &[u64]) -> CachedPlan {
        CachedPlan {
            faithful: is_index_faithful(&plan, lens),
            plan: Arc::new(plan),
        }
    }

    /// Instantiates the cached plan for a batch with the given
    /// canonicalization. Zero-copy (a shared handle) when the batch was
    /// already in canonical order or the plan uses synthetic ids; otherwise
    /// the placements are re-indexed through the sort permutation.
    pub fn materialize(&self, canonical: &CanonicalBatch) -> Arc<IterationPlan> {
        if self.faithful && !canonical.is_identity() {
            Arc::new(reindex_plan(&self.plan, canonical))
        } else {
            Arc::clone(&self.plan)
        }
    }
}

/// Hit/miss/eviction counters (monotonic over the cache's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required planning.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU cache of canonical plans.
#[derive(Debug)]
pub struct PlanCache {
    entries: HashMap<PlanKey, Entry, DigestHasherBuilder>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

#[derive(Debug)]
struct Entry {
    plan: Arc<CachedPlan>,
    last_used: u64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (min 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            entries: HashMap::with_hasher(DigestHasherBuilder),
            capacity: capacity.max(1),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up a canonical plan, counting a hit or miss.
    pub fn lookup(&mut self, key: &PlanKey) -> Option<Arc<CachedPlan>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&entry.plan))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a canonical plan, evicting the least-recently-used entry if
    /// the cache is full. Re-inserting an existing key refreshes it.
    pub fn insert(&mut self, key: PlanKey, plan: Arc<CachedPlan>) {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                plan,
                last_used: self.tick,
            },
        );
    }

    /// Drops every entry whose context signature differs from `ctx` —
    /// called after elastic events (`shrink_to_survivors`) re-derive the
    /// cluster, so stale pre-failure plans cannot linger in memory. Entries
    /// for the current context survive. Returns how many were purged.
    pub fn purge_stale(&mut self, ctx: &SchedulerCtx) -> usize {
        let sig = CtxSignature::new(ctx);
        let before = self.entries.len();
        self.entries.retain(|k, _| k.ctx == sig);
        before - self.entries.len()
    }

    /// Plans `batch` through the cache: on a hit the cached canonical plan
    /// is materialized for this batch's ordering (zero-copy when the batch
    /// is already canonical); on a miss the canonical batch is planned,
    /// cached, and materialized the same way. Returns the plan and whether
    /// it was a hit.
    ///
    /// # Errors
    ///
    /// Propagates the scheduler's [`PlanError`] (nothing is cached then).
    pub fn get_or_plan(
        &mut self,
        scheduler: &dyn Scheduler,
        batch: &Batch,
        ctx: &SchedulerCtx,
    ) -> Result<(Arc<IterationPlan>, bool), PlanError> {
        let (key, canonical) = PlanKey::new(scheduler.name(), batch, ctx);
        if let Some(cached) = self.lookup(&key) {
            return Ok((cached.materialize(&canonical), true));
        }
        let plan = scheduler.plan(&canonical.to_batch(), ctx)?;
        let cached = Arc::new(CachedPlan::new(plan, &canonical.lens));
        let materialized = cached.materialize(&canonical);
        self.insert(key, cached);
        Ok((materialized, false))
    }
}

/// A plan cache sharded N ways by the high bits of [`PlanKey::digest`].
///
/// Each shard is an independent [`PlanCache`] behind its own lock, with its
/// own tick-LRU clock and its own slice of the capacity budget, so concurrent
/// workers on distinct keys never contend on one mutex. The shard index
/// comes from the digest's high bits while the inner `HashMap` (through
/// [`DigestHasherBuilder`]) buckets on the low bits — the two choices stay
/// independent, so a shard's map does not degenerate into a few buckets.
#[derive(Debug)]
pub struct ShardedPlanCache {
    shards: Vec<Mutex<PlanCache>>,
}

impl ShardedPlanCache {
    /// Creates a cache of `shards` independent shards (min 1) splitting
    /// `capacity` between them (each shard holds at least one plan).
    pub fn new(capacity: usize, shards: usize) -> ShardedPlanCache {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedPlanCache {
            shards: (0..shards)
                .map(|_| Mutex::new(PlanCache::new(per_shard)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<PlanCache> {
        // High bits: the inner map consumes the low bits for buckets.
        let idx = (key.digest() >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Looks up a canonical plan in the owning shard.
    pub fn lookup(&self, key: &PlanKey) -> Option<Arc<CachedPlan>> {
        self.shard(key)
            .lock()
            .expect("cache shard lock")
            .lookup(key)
    }

    /// Inserts a canonical plan into the owning shard (shard-local LRU).
    pub fn insert(&self, key: PlanKey, plan: Arc<CachedPlan>) {
        self.shard(&key)
            .lock()
            .expect("cache shard lock")
            .insert(key, plan);
    }

    /// Total cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").len())
            .sum()
    }

    /// True when no shard holds a plan.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters merged across shards.
    pub fn stats(&self) -> CacheStats {
        let mut merged = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().expect("cache shard lock").stats();
            merged.hits += s.hits;
            merged.misses += s.misses;
            merged.evictions += s.evictions;
        }
        merged
    }

    /// Purges entries whose context signature differs from `ctx`, shard by
    /// shard. Returns how many were dropped in total.
    pub fn purge_stale(&self, ctx: &SchedulerCtx) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").purge_stale(ctx))
            .sum()
    }

    /// Plans `batch` through the owning shard — the sharded analogue of
    /// [`PlanCache::get_or_plan`], same hit/materialization semantics.
    ///
    /// # Errors
    ///
    /// Propagates the scheduler's [`PlanError`] (nothing is cached then).
    pub fn get_or_plan(
        &self,
        scheduler: &dyn Scheduler,
        batch: &Batch,
        ctx: &SchedulerCtx,
    ) -> Result<(Arc<IterationPlan>, bool), PlanError> {
        let (key, canonical) = PlanKey::new(scheduler.name(), batch, ctx);
        if let Some(cached) = self.lookup(&key) {
            return Ok((cached.materialize(&canonical), true));
        }
        let plan = scheduler.plan(&canonical.to_batch(), ctx)?;
        let cached = Arc::new(CachedPlan::new(plan, &canonical.lens));
        let materialized = cached.materialize(&canonical);
        self.insert(key, cached);
        Ok((materialized, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_core::zeppelin::Zeppelin;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192)
    }

    #[test]
    fn repeated_shapes_hit_regardless_of_order() {
        let ctx = ctx();
        let mut cache = PlanCache::new(16);
        let (first, hit) = cache
            .get_or_plan(&Zeppelin::new(), &Batch::new(vec![9000, 500, 2500]), &ctx)
            .unwrap();
        assert!(!hit);
        // A permuted batch with the same multiset hits and re-indexes.
        let permuted = Batch::new(vec![500, 2500, 9000]);
        let (second, hit) = cache
            .get_or_plan(&Zeppelin::new(), &permuted, &ctx)
            .unwrap();
        assert!(hit);
        assert_eq!(*second, Zeppelin::new().plan(&permuted, &ctx).unwrap());
        // The first call's plan equals direct planning too.
        assert_eq!(
            *first,
            Zeppelin::new()
                .plan(&Batch::new(vec![9000, 500, 2500]), &ctx)
                .unwrap()
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_shapes_and_contexts_occupy_distinct_entries() {
        let ctx = ctx();
        let mut cache = PlanCache::new(16);
        let z = Zeppelin::new();
        cache
            .get_or_plan(&z, &Batch::new(vec![1000, 2000]), &ctx)
            .unwrap();
        cache
            .get_or_plan(&z, &Batch::new(vec![1000, 2001]), &ctx)
            .unwrap();
        let other_ctx = ctx.clone().with_capacity(4096);
        cache
            .get_or_plan(&z, &Batch::new(vec![1000, 2000]), &other_ctx)
            .unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let ctx = ctx();
        let mut cache = PlanCache::new(2);
        let z = Zeppelin::new();
        let a = Batch::new(vec![1000]);
        let b = Batch::new(vec![2000]);
        let c = Batch::new(vec![3000]);
        cache.get_or_plan(&z, &a, &ctx).unwrap();
        cache.get_or_plan(&z, &b, &ctx).unwrap();
        cache.get_or_plan(&z, &a, &ctx).unwrap(); // refresh a; b is now LRU
        cache.get_or_plan(&z, &c, &ctx).unwrap(); // evicts b
        assert_eq!(cache.stats().evictions, 1);
        let (_, hit_a) = cache.get_or_plan(&z, &a, &ctx).unwrap();
        assert!(hit_a, "refreshed entry must survive eviction");
        let (_, hit_b) = cache.get_or_plan(&z, &b, &ctx).unwrap();
        assert!(!hit_b, "LRU entry must have been evicted");
    }

    #[test]
    fn canonical_order_hits_share_the_cached_plan() {
        let ctx = ctx();
        let mut cache = PlanCache::new(4);
        let z = Zeppelin::new();
        let descending = Batch::new(vec![9000, 2500, 500]);
        let (first, _) = cache.get_or_plan(&z, &descending, &ctx).unwrap();
        let (again, hit) = cache.get_or_plan(&z, &descending, &ctx).unwrap();
        assert!(hit);
        // Already-canonical batches are served zero-copy.
        assert!(Arc::ptr_eq(&first, &again));
        // A permuted view re-indexes into a fresh allocation.
        let (permuted, hit) = cache
            .get_or_plan(&z, &Batch::new(vec![500, 9000, 2500]), &ctx)
            .unwrap();
        assert!(hit);
        assert!(!Arc::ptr_eq(&first, &permuted));
    }

    #[test]
    fn failed_plans_are_not_cached() {
        let tiny = ctx().with_capacity(64);
        let mut cache = PlanCache::new(4);
        let batch = Batch::new(vec![100_000]);
        assert!(cache.get_or_plan(&Zeppelin::new(), &batch, &tiny).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn digest_hasher_passes_the_stored_digest_through() {
        let ctx = ctx();
        let (key, _) = PlanKey::new("zeppelin", &Batch::new(vec![9000, 500]), &ctx);
        let mut h = DigestHasherBuilder.build_hasher();
        key.hash(&mut h);
        assert_eq!(h.finish(), key.digest());
    }

    #[test]
    fn sharded_cache_matches_unsharded_semantics() {
        let ctx = ctx();
        let sharded = ShardedPlanCache::new(16, 4);
        let z = Zeppelin::new();
        let (first, hit) = sharded
            .get_or_plan(&z, &Batch::new(vec![9000, 500, 2500]), &ctx)
            .unwrap();
        assert!(!hit);
        let (second, hit) = sharded
            .get_or_plan(&z, &Batch::new(vec![500, 2500, 9000]), &ctx)
            .unwrap();
        assert!(hit, "permuted multiset hits whichever shard owns the key");
        assert_eq!(
            *second,
            z.plan(&Batch::new(vec![500, 2500, 9000]), &ctx).unwrap()
        );
        assert_eq!(
            *first,
            z.plan(&Batch::new(vec![9000, 500, 2500]), &ctx).unwrap()
        );
        let stats = sharded.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(sharded.len(), 1);
        assert!(!sharded.is_empty());
    }

    #[test]
    fn sharded_purge_drops_stale_contexts_across_shards() {
        let ctx = ctx();
        let sharded = ShardedPlanCache::new(32, 4);
        let z = Zeppelin::new();
        for i in 0..8u64 {
            sharded
                .get_or_plan(&z, &Batch::new(vec![1000 + i, 500]), &ctx)
                .unwrap();
        }
        assert_eq!(sharded.len(), 8);
        let other = ctx.clone().with_capacity(4096);
        assert_eq!(sharded.purge_stale(&other), 8);
        assert!(sharded.is_empty());
    }
}

//! Service metrics: request counters, cache effectiveness, fault-discipline
//! counters (shed / degraded / panicked / deadline-exceeded), and planning
//! latency percentiles, shared across worker threads.
//!
//! The sink is sharded: each worker records into its own mutex-guarded shard
//! (see [`ServiceMetrics::shard`]), so the hot cached-plan path never
//! serializes every worker through one global metrics lock. Shards are
//! merged — counters summed, latency reservoirs concatenated — only when a
//! [`ServiceMetrics::snapshot`] is taken for a `stats` request or the final
//! server report.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How many recent planning latencies each shard's reservoir keeps.
const RESERVOIR: usize = 4096;

/// Thread-safe metrics sink for the serving front-end.
#[derive(Debug)]
pub struct ServiceMetrics {
    shards: Vec<Mutex<Inner>>,
    queue_depth: AtomicUsize,
}

impl Default for ServiceMetrics {
    fn default() -> ServiceMetrics {
        ServiceMetrics::with_shards(1)
    }
}

#[derive(Debug, Default)]
struct Inner {
    plan_requests: u64,
    cache_hits: u64,
    stats_requests: u64,
    errors: u64,
    rejected: u64,
    shed: u64,
    degraded: u64,
    deadline_exceeded: u64,
    worker_panics: u64,
    worker_respawns: u64,
    breaker_trips: u64,
    slow_clients: u64,
    shutting_down: u64,
    planner_runs: u64,
    coalesced: u64,
    latencies_us: Vec<u64>,
    next_slot: usize,
}

/// A point-in-time copy of the metrics, with derived percentiles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `plan` requests answered with a plan (primary or degraded).
    pub plan_requests: u64,
    /// `plan` requests answered from the cache.
    pub cache_hits: u64,
    /// `stats` requests served.
    pub stats_requests: u64,
    /// Malformed or failed requests.
    pub errors: u64,
    /// Connections rejected by queue-depth backpressure.
    pub rejected: u64,
    /// Cache misses shed by the admission gate (answered degraded).
    pub shed: u64,
    /// Plan responses served by the fallback scheduler (`degraded: true`),
    /// whether shed by load or short-circuited by the breaker.
    pub degraded: u64,
    /// Requests whose deadline expired before the response could ship.
    pub deadline_exceeded: u64,
    /// Panics contained by a worker while serving a request.
    pub worker_panics: u64,
    /// Worker threads re-entered after an uncontained panic escaped the
    /// request handler (the pool's capacity backstop).
    pub worker_respawns: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Connections shed for dribbling a frame past the per-frame budget.
    pub slow_clients: u64,
    /// Requests answered with a typed `shutting_down` error during drain.
    pub shutting_down: u64,
    /// Primary planner invocations (each charged once to the admission
    /// gate, however many coalesced waiters it serves).
    pub planner_runs: u64,
    /// Requests served by joining another request's in-flight planner run
    /// (single-flight followers).
    pub coalesced: u64,
    /// Jobs waiting for a worker right now.
    pub queue_depth: usize,
    /// Median planning latency over the recent reservoir, microseconds.
    pub p50_us: u64,
    /// 99th-percentile planning latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile planning latency, microseconds.
    pub p999_us: u64,
}

impl MetricsSnapshot {
    /// Cache hits as a fraction of plan requests.
    pub fn hit_rate(&self) -> f64 {
        if self.plan_requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.plan_requests as f64
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A recording handle pinned to one shard of a [`ServiceMetrics`].
///
/// Cheap to copy; each worker thread holds its own so recording on the hot
/// path contends only with snapshots, never with the other workers.
#[derive(Debug, Clone, Copy)]
pub struct MetricsShard<'a> {
    metrics: &'a ServiceMetrics,
    shard: usize,
}

impl ServiceMetrics {
    /// Fresh metrics with a single shard (fine for tests and light use).
    pub fn new() -> ServiceMetrics {
        ServiceMetrics::with_shards(1)
    }

    /// Fresh metrics sharded `n` ways (min 1) — one shard per recorder.
    pub fn with_shards(n: usize) -> ServiceMetrics {
        ServiceMetrics {
            shards: (0..n.max(1))
                .map(|_| Mutex::new(Inner::default()))
                .collect(),
            queue_depth: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The recording handle for shard `idx % shards()`.
    pub fn shard(&self, idx: usize) -> MetricsShard<'_> {
        MetricsShard {
            metrics: self,
            shard: idx % self.shards.len(),
        }
    }

    fn with_inner<R>(&self, shard: usize, f: impl FnOnce(&mut Inner) -> R) -> R {
        f(&mut self.shards[shard].lock().expect("metrics poisoned"))
    }

    /// Records one served `plan` request and its planning latency.
    pub fn record_plan(&self, latency: Duration, cache_hit: bool) {
        self.shard(0).record_plan(latency, cache_hit);
    }

    /// Records one served `stats` request.
    pub fn record_stats(&self) {
        self.shard(0).record_stats();
    }

    /// Records a request that failed (parse error, plan error, bad flags).
    pub fn record_error(&self) {
        self.shard(0).record_error();
    }

    /// Records a connection or request rejected by backpressure.
    pub fn record_rejected(&self) {
        self.shard(0).record_rejected();
    }

    /// Records a cache miss shed by the admission gate.
    pub fn record_shed(&self) {
        self.shard(0).record_shed();
    }

    /// Records a degraded (fallback-scheduler) plan response.
    pub fn record_degraded(&self) {
        self.shard(0).record_degraded();
    }

    /// Records a request whose deadline expired server-side.
    pub fn record_deadline_exceeded(&self) {
        self.shard(0).record_deadline_exceeded();
    }

    /// Records a panic contained while serving a request.
    pub fn record_worker_panic(&self) {
        self.shard(0).record_worker_panic();
    }

    /// Records a worker re-entering its loop after an escaped panic.
    pub fn record_worker_respawn(&self) {
        self.shard(0).record_worker_respawn();
    }

    /// Records the circuit breaker tripping open.
    pub fn record_breaker_trip(&self) {
        self.shard(0).record_breaker_trip();
    }

    /// Records a connection shed as a slow-loris client.
    pub fn record_slow_client(&self) {
        self.shard(0).record_slow_client();
    }

    /// Records a typed `shutting_down` reply during drain.
    pub fn record_shutting_down(&self) {
        self.shard(0).record_shutting_down();
    }

    /// Records one primary planner invocation.
    pub fn record_planner_run(&self) {
        self.shard(0).record_planner_run();
    }

    /// Records a request coalesced onto another's in-flight planner run.
    pub fn record_coalesced(&self) {
        self.shard(0).record_coalesced();
    }

    /// Adjusts the queue-depth gauge as jobs enqueue/dequeue.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Merges every shard — counters summed, reservoirs concatenated — and
    /// computes latency percentiles over the combined samples.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut s = MetricsSnapshot {
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            ..MetricsSnapshot::default()
        };
        let mut sorted = Vec::new();
        for shard in &self.shards {
            let m = shard.lock().expect("metrics poisoned");
            s.plan_requests += m.plan_requests;
            s.cache_hits += m.cache_hits;
            s.stats_requests += m.stats_requests;
            s.errors += m.errors;
            s.rejected += m.rejected;
            s.shed += m.shed;
            s.degraded += m.degraded;
            s.deadline_exceeded += m.deadline_exceeded;
            s.worker_panics += m.worker_panics;
            s.worker_respawns += m.worker_respawns;
            s.breaker_trips += m.breaker_trips;
            s.slow_clients += m.slow_clients;
            s.shutting_down += m.shutting_down;
            s.planner_runs += m.planner_runs;
            s.coalesced += m.coalesced;
            sorted.extend_from_slice(&m.latencies_us);
        }
        sorted.sort_unstable();
        s.p50_us = percentile(&sorted, 0.50);
        s.p99_us = percentile(&sorted, 0.99);
        s.p999_us = percentile(&sorted, 0.999);
        s
    }
}

impl MetricsShard<'_> {
    /// Records one served `plan` request and its planning latency.
    pub fn record_plan(&self, latency: Duration, cache_hit: bool) {
        self.metrics.with_inner(self.shard, |m| {
            m.plan_requests += 1;
            if cache_hit {
                m.cache_hits += 1;
            }
            let us = latency.as_micros().min(u64::MAX as u128) as u64;
            if m.latencies_us.len() < RESERVOIR {
                m.latencies_us.push(us);
            } else {
                let slot = m.next_slot;
                m.latencies_us[slot] = us;
            }
            m.next_slot = (m.next_slot + 1) % RESERVOIR;
        });
    }

    /// Records one served `stats` request.
    pub fn record_stats(&self) {
        self.metrics
            .with_inner(self.shard, |m| m.stats_requests += 1);
    }

    /// Records a request that failed (parse error, plan error, bad flags).
    pub fn record_error(&self) {
        self.metrics.with_inner(self.shard, |m| m.errors += 1);
    }

    /// Records a connection or request rejected by backpressure.
    pub fn record_rejected(&self) {
        self.metrics.with_inner(self.shard, |m| m.rejected += 1);
    }

    /// Records a cache miss shed by the admission gate.
    pub fn record_shed(&self) {
        self.metrics.with_inner(self.shard, |m| m.shed += 1);
    }

    /// Records a degraded (fallback-scheduler) plan response.
    pub fn record_degraded(&self) {
        self.metrics.with_inner(self.shard, |m| m.degraded += 1);
    }

    /// Records a request whose deadline expired server-side.
    pub fn record_deadline_exceeded(&self) {
        self.metrics
            .with_inner(self.shard, |m| m.deadline_exceeded += 1);
    }

    /// Records a panic contained while serving a request.
    pub fn record_worker_panic(&self) {
        self.metrics
            .with_inner(self.shard, |m| m.worker_panics += 1);
    }

    /// Records a worker re-entering its loop after an escaped panic.
    pub fn record_worker_respawn(&self) {
        self.metrics
            .with_inner(self.shard, |m| m.worker_respawns += 1);
    }

    /// Records the circuit breaker tripping open.
    pub fn record_breaker_trip(&self) {
        self.metrics
            .with_inner(self.shard, |m| m.breaker_trips += 1);
    }

    /// Records a connection shed as a slow-loris client.
    pub fn record_slow_client(&self) {
        self.metrics.with_inner(self.shard, |m| m.slow_clients += 1);
    }

    /// Records a typed `shutting_down` reply during drain.
    pub fn record_shutting_down(&self) {
        self.metrics
            .with_inner(self.shard, |m| m.shutting_down += 1);
    }

    /// Records one primary planner invocation.
    pub fn record_planner_run(&self) {
        self.metrics.with_inner(self.shard, |m| m.planner_runs += 1);
    }

    /// Records a request coalesced onto another's in-flight planner run.
    pub fn record_coalesced(&self) {
        self.metrics.with_inner(self.shard, |m| m.coalesced += 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_come_from_the_reservoir() {
        let m = ServiceMetrics::new();
        for us in 1..=100u64 {
            m.record_plan(Duration::from_micros(us), us % 2 == 0);
        }
        let s = m.snapshot();
        assert_eq!(s.plan_requests, 100);
        assert_eq!(s.cache_hits, 50);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!((49..=51).contains(&s.p50_us), "p50 {}", s.p50_us);
        assert!((98..=100).contains(&s.p99_us), "p99 {}", s.p99_us);
        assert!((99..=100).contains(&s.p999_us), "p999 {}", s.p999_us);
    }

    #[test]
    fn reservoir_wraps_without_growing() {
        let m = ServiceMetrics::new();
        for _ in 0..(RESERVOIR + 100) {
            m.record_plan(Duration::from_micros(7), false);
        }
        let s = m.snapshot();
        assert_eq!(s.p50_us, 7);
        assert_eq!(s.p999_us, 7);
        assert_eq!(s.plan_requests, (RESERVOIR + 100) as u64);
    }

    #[test]
    fn empty_metrics_snapshot_is_zeroed() {
        let s = ServiceMetrics::new().snapshot();
        assert_eq!(s, MetricsSnapshot::default());
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn gauges_and_counters_update() {
        let m = ServiceMetrics::new();
        m.record_stats();
        m.record_error();
        m.record_rejected();
        m.set_queue_depth(3);
        let s = m.snapshot();
        assert_eq!(
            (s.stats_requests, s.errors, s.rejected, s.queue_depth),
            (1, 1, 1, 3)
        );
    }

    #[test]
    fn fault_counters_update_independently() {
        let m = ServiceMetrics::new();
        m.record_shed();
        m.record_degraded();
        m.record_degraded();
        m.record_deadline_exceeded();
        m.record_worker_panic();
        m.record_worker_respawn();
        m.record_breaker_trip();
        m.record_slow_client();
        m.record_shutting_down();
        let s = m.snapshot();
        assert_eq!(s.shed, 1);
        assert_eq!(s.degraded, 2);
        assert_eq!(s.deadline_exceeded, 1);
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.worker_respawns, 1);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.slow_clients, 1);
        assert_eq!(s.shutting_down, 1);
        // Fault counters never leak into request accounting.
        assert_eq!(s.plan_requests, 0);
        assert_eq!(s.errors, 0);
    }

    #[test]
    fn snapshots_merge_counters_and_reservoirs_across_shards() {
        let m = ServiceMetrics::with_shards(4);
        assert_eq!(m.shards(), 4);
        for i in 0..4 {
            let shard = m.shard(i);
            shard.record_plan(Duration::from_micros(10 * (i as u64 + 1)), i % 2 == 0);
            shard.record_planner_run();
        }
        m.shard(1).record_coalesced();
        m.shard(7).record_error(); // wraps to shard 3
        let s = m.snapshot();
        assert_eq!(s.plan_requests, 4);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.planner_runs, 4);
        assert_eq!(s.coalesced, 1);
        assert_eq!(s.errors, 1);
        // Percentiles see the union of every shard's reservoir.
        assert_eq!(s.p50_us, 30);
        assert_eq!(s.p999_us, 40);
    }
}

//! Service metrics: request counters, cache effectiveness, and planning
//! latency percentiles, shared across worker threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How many recent planning latencies the reservoir keeps (ring buffer).
const RESERVOIR: usize = 4096;

/// Thread-safe metrics sink for the serving front-end.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    inner: Mutex<Inner>,
    queue_depth: AtomicUsize,
}

#[derive(Debug, Default)]
struct Inner {
    plan_requests: u64,
    cache_hits: u64,
    stats_requests: u64,
    errors: u64,
    rejected: u64,
    latencies_us: Vec<u64>,
    next_slot: usize,
}

/// A point-in-time copy of the metrics, with derived percentiles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `plan` requests served (hit or miss).
    pub plan_requests: u64,
    /// `plan` requests answered from the cache.
    pub cache_hits: u64,
    /// `stats` requests served.
    pub stats_requests: u64,
    /// Malformed or failed requests.
    pub errors: u64,
    /// Connections rejected by queue-depth backpressure.
    pub rejected: u64,
    /// Connections waiting for a worker right now.
    pub queue_depth: usize,
    /// Median planning latency over the recent reservoir, microseconds.
    pub p50_us: u64,
    /// 99th-percentile planning latency, microseconds.
    pub p99_us: u64,
}

impl MetricsSnapshot {
    /// Cache hits as a fraction of plan requests.
    pub fn hit_rate(&self) -> f64 {
        if self.plan_requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.plan_requests as f64
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl ServiceMetrics {
    /// Fresh metrics with everything at zero.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics::default()
    }

    /// Records one served `plan` request and its planning latency.
    pub fn record_plan(&self, latency: Duration, cache_hit: bool) {
        let mut m = self.inner.lock().expect("metrics poisoned");
        m.plan_requests += 1;
        if cache_hit {
            m.cache_hits += 1;
        }
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        if m.latencies_us.len() < RESERVOIR {
            m.latencies_us.push(us);
        } else {
            let slot = m.next_slot;
            m.latencies_us[slot] = us;
        }
        m.next_slot = (m.next_slot + 1) % RESERVOIR;
    }

    /// Records one served `stats` request.
    pub fn record_stats(&self) {
        self.inner.lock().expect("metrics poisoned").stats_requests += 1;
    }

    /// Records a request that failed (parse error, plan error, bad flags).
    pub fn record_error(&self) {
        self.inner.lock().expect("metrics poisoned").errors += 1;
    }

    /// Records a connection rejected by backpressure.
    pub fn record_rejected(&self) {
        self.inner.lock().expect("metrics poisoned").rejected += 1;
    }

    /// Adjusts the queue-depth gauge as connections enqueue/dequeue.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Copies the counters and computes latency percentiles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.inner.lock().expect("metrics poisoned");
        let mut sorted = m.latencies_us.clone();
        sorted.sort_unstable();
        MetricsSnapshot {
            plan_requests: m.plan_requests,
            cache_hits: m.cache_hits,
            stats_requests: m.stats_requests,
            errors: m.errors,
            rejected: m.rejected,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            p50_us: percentile(&sorted, 0.50),
            p99_us: percentile(&sorted, 0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_come_from_the_reservoir() {
        let m = ServiceMetrics::new();
        for us in 1..=100u64 {
            m.record_plan(Duration::from_micros(us), us % 2 == 0);
        }
        let s = m.snapshot();
        assert_eq!(s.plan_requests, 100);
        assert_eq!(s.cache_hits, 50);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!((49..=51).contains(&s.p50_us), "p50 {}", s.p50_us);
        assert!((98..=100).contains(&s.p99_us), "p99 {}", s.p99_us);
    }

    #[test]
    fn reservoir_wraps_without_growing() {
        let m = ServiceMetrics::new();
        for _ in 0..(RESERVOIR + 100) {
            m.record_plan(Duration::from_micros(7), false);
        }
        let s = m.snapshot();
        assert_eq!(s.p50_us, 7);
        assert_eq!(s.plan_requests, (RESERVOIR + 100) as u64);
    }

    #[test]
    fn empty_metrics_snapshot_is_zeroed() {
        let s = ServiceMetrics::new().snapshot();
        assert_eq!(s, MetricsSnapshot::default());
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn gauges_and_counters_update() {
        let m = ServiceMetrics::new();
        m.record_stats();
        m.record_error();
        m.record_rejected();
        m.set_queue_depth(3);
        let s = m.snapshot();
        assert_eq!(
            (s.stats_requests, s.errors, s.rejected, s.queue_depth),
            (1, 1, 1, 3)
        );
    }
}

//! A std-only readiness poller for the serving event loop.
//!
//! The crate is `#![forbid(unsafe_code)]` and carries no I/O dependencies
//! (vendored-offline policy: no tokio, no mio, no libc), so a raw
//! epoll/kqueue wrapper is off the table. This is the poll(2)-fallback
//! equivalent built from what std gives us: every registered source is a
//! `try_clone`d [`TcpStream`] probe in non-blocking mode, and a poll pass
//! asks each one `peek(&mut [0u8; 1])` —
//!
//! - `Ok(n > 0)`: bytes are waiting — the source is readable,
//! - `Ok(0)`: the peer closed — readable (the owner must observe EOF),
//! - `Err(WouldBlock)`: nothing pending — not ready,
//! - any other error: readable (the owner must observe the error).
//!
//! This is level-triggered, exactly like poll(2): a source stays ready
//! until its owner drains it. [`Poller::poll`] scans all sources, and when
//! none are ready sleeps in short slices until the timeout elapses, so an
//! idle server burns a bounded, small number of probe syscalls instead of a
//! spinning core. The scan is O(sources) per pass — the right trade for a
//! planning front-end holding tens to a few thousand connections, and it
//! keeps the event loop's single-threaded state machine free of any
//! platform-specific readiness API.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How long [`Poller::poll`] sleeps between scans while nothing is ready.
const POLL_SLICE: Duration = Duration::from_micros(100);

/// A level-triggered readiness scanner over non-blocking TCP streams.
#[derive(Debug, Default)]
pub struct Poller {
    sources: HashMap<u64, TcpStream>,
}

impl Poller {
    /// An empty poller.
    pub fn new() -> Poller {
        Poller::default()
    }

    /// Registers `probe` (a non-blocking clone of the connection's stream)
    /// under `token`. Re-registering a token replaces its probe.
    pub fn register(&mut self, token: u64, probe: TcpStream) {
        self.sources.insert(token, probe);
    }

    /// Drops the probe registered under `token` (no-op if absent).
    pub fn deregister(&mut self, token: u64) {
        self.sources.remove(&token);
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when no source is registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Scans every source for readiness, filling `ready` (cleared first)
    /// with the tokens that have pending input, EOF, or a pending error.
    /// When none are ready, re-scans in short sleep slices until `timeout`
    /// elapses. Returns how many tokens are ready.
    pub fn poll(&self, ready: &mut Vec<u64>, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        loop {
            ready.clear();
            let mut probe = [0u8; 1];
            for (&token, source) in &self.sources {
                match source.peek(&mut probe) {
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    // Data, EOF, or a socket error: the owner must look.
                    Ok(_) | Err(_) => ready.push(token),
                }
            }
            if !ready.is_empty() || Instant::now() >= deadline {
                return ready.len();
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            std::thread::sleep(remaining.min(POLL_SLICE));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        (client, server)
    }

    #[test]
    fn quiet_sources_are_not_ready() {
        let (_client, server) = pair();
        let mut poller = Poller::new();
        poller.register(7, server.try_clone().expect("clone"));
        let mut ready = Vec::new();
        assert_eq!(poller.poll(&mut ready, Duration::from_millis(5)), 0);
        assert!(ready.is_empty());
    }

    #[test]
    fn pending_bytes_and_eof_wake_the_poller() {
        let (mut client, server) = pair();
        let mut poller = Poller::new();
        poller.register(3, server.try_clone().expect("clone"));
        client.write_all(b"hello\n").expect("write");
        let mut ready = Vec::new();
        assert_eq!(poller.poll(&mut ready, Duration::from_millis(500)), 1);
        assert_eq!(ready, vec![3]);

        // Level-triggered: still ready until drained.
        assert_eq!(poller.poll(&mut ready, Duration::ZERO), 1);
        let mut server = server;
        let mut buf = [0u8; 64];
        let n = server.read(&mut buf).expect("drain");
        assert_eq!(&buf[..n], b"hello\n");
        assert_eq!(poller.poll(&mut ready, Duration::ZERO), 0);

        // A closed peer reads as ready so the owner can observe EOF.
        drop(client);
        assert_eq!(poller.poll(&mut ready, Duration::from_millis(500)), 1);
        assert_eq!(ready, vec![3]);
    }

    #[test]
    fn deregistered_sources_stop_polling() {
        let (mut client, server) = pair();
        let mut poller = Poller::new();
        poller.register(1, server.try_clone().expect("clone"));
        client.write_all(b"x").expect("write");
        let mut ready = Vec::new();
        assert_eq!(poller.poll(&mut ready, Duration::from_millis(500)), 1);
        poller.deregister(1);
        assert!(poller.is_empty());
        assert_eq!(poller.poll(&mut ready, Duration::ZERO), 0);
    }
}

//! Name → object resolution shared by the CLI and the serving front-end,
//! so `zeppelin-cli plan --method te` and a `{"op":"plan","method":"te"}`
//! request accept exactly the same vocabulary.

use zeppelin_core::scheduler::Scheduler;
use zeppelin_data::distribution::LengthDistribution;
use zeppelin_model::config::ModelConfig;
use zeppelin_sim::topology::{cluster_a, cluster_b, cluster_c, cluster_mixed, ClusterSpec};

/// Scheduler names accepted by [`scheduler_by_name`] (canonical spellings).
pub use zeppelin_baselines::SCHEDULER_NAMES;

/// Resolves a scheduler by its CLI/protocol name.
///
/// # Errors
///
/// Returns the offending name for unknown schedulers.
pub fn scheduler_by_name(name: &str) -> Result<Box<dyn Scheduler>, String> {
    zeppelin_baselines::scheduler_by_name(name)
}

/// Resolves a model preset by name.
///
/// # Errors
///
/// Returns the offending name for unknown models.
pub fn model_by_name(name: &str) -> Result<ModelConfig, String> {
    zeppelin_model::config::by_name(name)
}

/// Resolves a cluster preset by name with `nodes` nodes.
///
/// # Errors
///
/// Returns the offending name for unknown clusters.
pub fn cluster_by_name(name: &str, nodes: usize) -> Result<ClusterSpec, String> {
    match name.to_ascii_lowercase().as_str() {
        "a" => Ok(cluster_a(nodes)),
        "b" => Ok(cluster_b(nodes)),
        "c" => Ok(cluster_c(nodes)),
        "m" | "mixed" => Ok(cluster_mixed(nodes)),
        other => Err(other.to_string()),
    }
}

/// Resolves a dataset length distribution by name.
///
/// # Errors
///
/// Returns the offending name for unknown datasets.
pub fn dataset_by_name(name: &str) -> Result<LengthDistribution, String> {
    zeppelin_data::datasets::by_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_canonical_scheduler_name_resolves() {
        for name in SCHEDULER_NAMES {
            assert!(scheduler_by_name(name).is_ok(), "{name}");
        }
        let err = scheduler_by_name("mesh").map(|_| ()).unwrap_err();
        assert_eq!(err, "mesh");
    }

    #[test]
    fn aliases_and_case_are_accepted() {
        assert_eq!(scheduler_by_name("TE-CP").unwrap().name(), "TE CP");
        assert_eq!(model_by_name("LLAMA-7B").unwrap().name, "LLaMA-7B");
        assert_eq!(cluster_by_name("B", 3).unwrap().nodes, 3);
        assert_eq!(scheduler_by_name("het").unwrap().name(), "Zeppelin-Het");
        assert!(cluster_by_name("mixed", 3).unwrap().rank_speeds().is_some());
        assert_eq!(
            dataset_by_name("prolong").unwrap().name,
            dataset_by_name("prolong64k").unwrap().name
        );
    }

    #[test]
    fn unknown_names_round_trip_in_errors() {
        assert_eq!(model_by_name("70b").unwrap_err(), "70b");
        assert_eq!(cluster_by_name("z", 1).unwrap_err(), "z");
        assert_eq!(dataset_by_name("wikipedia").unwrap_err(), "wikipedia");
    }
}

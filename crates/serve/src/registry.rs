//! Name → object resolution shared by the CLI and the serving front-end,
//! so `zeppelin-cli plan --method te` and a `{"op":"plan","method":"te"}`
//! request accept exactly the same vocabulary.

use zeppelin_baselines::{DoubleRingCp, HybridDp, LlamaCp, Packing, TeCp, Ulysses};
use zeppelin_core::scheduler::Scheduler;
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::datasets as ds;
use zeppelin_data::distribution::LengthDistribution;
use zeppelin_model::config as models;
use zeppelin_model::config::ModelConfig;
use zeppelin_sim::topology::{cluster_a, cluster_b, cluster_c, ClusterSpec};

/// Scheduler names accepted by [`scheduler_by_name`] (canonical spellings).
pub const SCHEDULER_NAMES: [&str; 7] = [
    "zeppelin",
    "te",
    "llama",
    "hybrid",
    "packing",
    "ulysses",
    "double-ring",
];

/// Resolves a scheduler by its CLI/protocol name.
///
/// # Errors
///
/// Returns the offending name for unknown schedulers.
pub fn scheduler_by_name(name: &str) -> Result<Box<dyn Scheduler>, String> {
    match name.to_ascii_lowercase().as_str() {
        "zeppelin" => Ok(Box::new(Zeppelin::new())),
        "te" | "te-cp" => Ok(Box::new(TeCp::new())),
        "llama" | "llama-cp" => Ok(Box::new(LlamaCp::new())),
        "hybrid" | "hybrid-dp" => Ok(Box::new(HybridDp::new())),
        "packing" => Ok(Box::new(Packing::new())),
        "ulysses" => Ok(Box::new(Ulysses::new())),
        "double-ring" | "doublering" => Ok(Box::new(DoubleRingCp::new())),
        other => Err(other.to_string()),
    }
}

/// Resolves a model preset by name.
///
/// # Errors
///
/// Returns the offending name for unknown models.
pub fn model_by_name(name: &str) -> Result<ModelConfig, String> {
    match name.to_ascii_lowercase().as_str() {
        "3b" | "llama-3b" => Ok(models::llama_3b()),
        "7b" | "llama-7b" => Ok(models::llama_7b()),
        "13b" | "llama-13b" => Ok(models::llama_13b()),
        "30b" | "llama-30b" => Ok(models::llama_30b()),
        "moe" | "8x550m" => Ok(models::moe_8x550m()),
        other => Err(other.to_string()),
    }
}

/// Resolves a cluster preset by name with `nodes` nodes.
///
/// # Errors
///
/// Returns the offending name for unknown clusters.
pub fn cluster_by_name(name: &str, nodes: usize) -> Result<ClusterSpec, String> {
    match name.to_ascii_lowercase().as_str() {
        "a" => Ok(cluster_a(nodes)),
        "b" => Ok(cluster_b(nodes)),
        "c" => Ok(cluster_c(nodes)),
        other => Err(other.to_string()),
    }
}

/// Resolves a dataset length distribution by name.
///
/// # Errors
///
/// Returns the offending name for unknown datasets.
pub fn dataset_by_name(name: &str) -> Result<LengthDistribution, String> {
    match name.to_ascii_lowercase().as_str() {
        "arxiv" => Ok(ds::arxiv()),
        "github" => Ok(ds::github()),
        "prolong64k" | "prolong" => Ok(ds::prolong64k()),
        "stackexchange" => Ok(ds::stackexchange()),
        "openwebmath" => Ok(ds::openwebmath()),
        "fineweb" => Ok(ds::fineweb()),
        other => Err(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_canonical_scheduler_name_resolves() {
        for name in SCHEDULER_NAMES {
            assert!(scheduler_by_name(name).is_ok(), "{name}");
        }
        let err = scheduler_by_name("mesh").map(|_| ()).unwrap_err();
        assert_eq!(err, "mesh");
    }

    #[test]
    fn aliases_and_case_are_accepted() {
        assert_eq!(scheduler_by_name("TE-CP").unwrap().name(), "TE CP");
        assert_eq!(model_by_name("LLAMA-7B").unwrap().name, "LLaMA-7B");
        assert_eq!(cluster_by_name("B", 3).unwrap().nodes, 3);
        assert_eq!(
            dataset_by_name("prolong").unwrap().name,
            dataset_by_name("prolong64k").unwrap().name
        );
    }

    #[test]
    fn unknown_names_round_trip_in_errors() {
        assert_eq!(model_by_name("70b").unwrap_err(), "70b");
        assert_eq!(cluster_by_name("z", 1).unwrap_err(), "z");
        assert_eq!(dataset_by_name("wikipedia").unwrap_err(), "wikipedia");
    }
}

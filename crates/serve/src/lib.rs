//! # zeppelin-serve
//!
//! The online planning service: everything needed to run the repro as a
//! long-lived planner instead of a batch tool.
//!
//! - [`canonical`]: batch canonicalization (sorted length multiset +
//!   permutation) and plan re-indexing — equal-shaped batches share plans;
//! - [`cache`]: the canonicalizing LRU plan cache keyed by scheduler name,
//!   length multiset, and quantized context signature — digest-hashed
//!   lookups, plus the N-way sharded variant the server runs on;
//! - [`singleflight`]: coalescing of identical in-flight plan keys — one
//!   planner run fans its plan out to every concurrent waiter;
//! - [`event`]: the std-only readiness poller driving the server's
//!   single-threaded connection event loop;
//! - [`pipeline`]: the pipelined planner — step N+1 plans on a worker
//!   thread while step N simulates, with hidden-vs-exposed accounting;
//! - [`protocol`]: line-delimited JSON requests/responses (`plan`,
//!   `stats`, `shutdown`) with per-request deadlines and typed error
//!   codes, built on `zeppelin_core::plan_io`'s JSON;
//! - [`frame`]: bounded, resynchronizing line framing that survives
//!   oversized lines, dribbled bytes, and read timeouts;
//! - [`server`]: the TCP front-end — a readiness event loop feeding a
//!   bounded worker pool, with queue-depth backpressure, per-request panic
//!   containment, deadline propagation, and graceful bounded-grace drain;
//! - [`admission`]: the load-shedding gate over in-flight planner time
//!   and the circuit breaker that short-circuit misses to degraded mode;
//! - [`chaos`]: the seeded fault harness — deterministic adversarial
//!   client/planner schedules and the loopback runner that asserts the
//!   serving invariants;
//! - [`client`]: a blocking client for the CLI and tests, with timeouts
//!   and jittered-backoff retries on transport failures;
//! - [`metrics`]: hit rates, planning-latency percentiles, queue depth,
//!   and fault-discipline counters;
//! - [`registry`]: shared name → scheduler/model/cluster/dataset
//!   resolution, so the CLI and the wire protocol accept one vocabulary.
//!
//! Everything is std-only: threads, mpsc, `TcpListener`.
//!
//! # Examples
//!
//! ```
//! use zeppelin_core::scheduler::SchedulerCtx;
//! use zeppelin_core::zeppelin::Zeppelin;
//! use zeppelin_data::batch::Batch;
//! use zeppelin_model::config::llama_3b;
//! use zeppelin_serve::cache::PlanCache;
//! use zeppelin_sim::topology::cluster_a;
//!
//! let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192);
//! let mut cache = PlanCache::new(64);
//! let (plan, hit) = cache
//!     .get_or_plan(&Zeppelin::new(), &Batch::new(vec![9000, 500]), &ctx)
//!     .unwrap();
//! assert!(!hit);
//! // Same multiset, different order: served from cache, re-indexed.
//! let (again, hit) = cache
//!     .get_or_plan(&Zeppelin::new(), &Batch::new(vec![500, 9000]), &ctx)
//!     .unwrap();
//! assert!(hit);
//! assert_eq!(plan.total_tokens(), again.total_tokens());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod canonical;
pub mod chaos;
pub mod client;
pub mod event;
pub mod frame;
pub mod metrics;
pub mod pipeline;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod singleflight;

pub use admission::{AdmissionGate, BreakerState, CircuitBreaker, DegradeReason};
pub use cache::{
    CacheStats, CachedPlan, DigestHasherBuilder, PlanCache, PlanKey, ShardedPlanCache,
};
pub use canonical::{is_index_faithful, reindex_plan, CanonicalBatch, CtxSignature};
pub use chaos::{run_chaos, ChaosReport, PlannerChaos, ServeFault, ServeFaultSchedule};
pub use client::{send_request, send_request_with, ClientConfig};
pub use event::Poller;
pub use frame::{Frame, FrameError, FrameReader, MAX_FRAME_BYTES};
pub use metrics::{MetricsShard, MetricsSnapshot, ServiceMetrics};
pub use pipeline::{run_training_pipelined, PipelineConfig, PipelineReport};
pub use protocol::{parse_request, ErrorCode, Request};
pub use server::{Server, ServerConfig, ServerReport};
pub use singleflight::{Flight, FlightOutcome, FlightTable, Join};

//! # zeppelin-serve
//!
//! The online planning service: everything needed to run the repro as a
//! long-lived planner instead of a batch tool.
//!
//! - [`canonical`]: batch canonicalization (sorted length multiset +
//!   permutation) and plan re-indexing — equal-shaped batches share plans;
//! - [`cache`]: the canonicalizing LRU plan cache keyed by scheduler name,
//!   length multiset, and quantized context signature;
//! - [`pipeline`]: the pipelined planner — step N+1 plans on a worker
//!   thread while step N simulates, with hidden-vs-exposed accounting;
//! - [`protocol`]: line-delimited JSON requests/responses (`plan`,
//!   `stats`, `shutdown`) built on `zeppelin_core::plan_io`'s JSON;
//! - [`server`]: the TCP front-end with a bounded worker pool,
//!   queue-depth backpressure, and graceful shutdown;
//! - [`client`]: a blocking one-request client for the CLI and tests;
//! - [`metrics`]: hit rates, planning-latency percentiles, queue depth;
//! - [`registry`]: shared name → scheduler/model/cluster/dataset
//!   resolution, so the CLI and the wire protocol accept one vocabulary.
//!
//! Everything is std-only: threads, mpsc, `TcpListener`.
//!
//! # Examples
//!
//! ```
//! use zeppelin_core::scheduler::SchedulerCtx;
//! use zeppelin_core::zeppelin::Zeppelin;
//! use zeppelin_data::batch::Batch;
//! use zeppelin_model::config::llama_3b;
//! use zeppelin_serve::cache::PlanCache;
//! use zeppelin_sim::topology::cluster_a;
//!
//! let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192);
//! let mut cache = PlanCache::new(64);
//! let (plan, hit) = cache
//!     .get_or_plan(&Zeppelin::new(), &Batch::new(vec![9000, 500]), &ctx)
//!     .unwrap();
//! assert!(!hit);
//! // Same multiset, different order: served from cache, re-indexed.
//! let (again, hit) = cache
//!     .get_or_plan(&Zeppelin::new(), &Batch::new(vec![500, 9000]), &ctx)
//!     .unwrap();
//! assert!(hit);
//! assert_eq!(plan.total_tokens(), again.total_tokens());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod canonical;
pub mod client;
pub mod metrics;
pub mod pipeline;
pub mod protocol;
pub mod registry;
pub mod server;

pub use cache::{CacheStats, CachedPlan, PlanCache, PlanKey};
pub use canonical::{is_index_faithful, reindex_plan, CanonicalBatch, CtxSignature};
pub use client::send_request;
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use pipeline::{run_training_pipelined, PipelineConfig, PipelineReport};
pub use protocol::{parse_request, Request};
pub use server::{Server, ServerConfig, ServerReport};

//! Admission control for the planning hot path: a load-shedding gate over
//! estimated in-flight planner time, and a circuit breaker over consecutive
//! planner failures.
//!
//! Both answer one question — *should this cache miss run the real
//! planner?* — and both degrade rather than queue: a shed or broken request
//! is answered immediately by the fast fallback scheduler, tagged
//! `degraded: true`, instead of joining an unbounded convoy behind a slow or
//! failing planner.
//!
//! The gate tracks the *sum of estimated milliseconds* of planner work
//! currently in flight, where the estimate is an EWMA of recently observed
//! planner latencies. Past the high-water mark, new misses are shed. This is
//! deliberately time-based rather than count-based: ten 2 ms plans are
//! cheaper than one 5-second pathological batch, and queue-depth rejection
//! (the old policy) cannot tell them apart.
//!
//! The breaker is the classic three-state machine:
//!
//! ```text
//!          consecutive failures >= threshold
//!   Closed ───────────────────────────────────▶ Open
//!     ▲  ▲                                       │
//!     │  └──────────── trial success ◀─┐         │ cooldown elapsed
//!     │                                │         ▼
//!     └── failure re-opens ◀────── HalfOpen (one trial admitted)
//! ```
//!
//! While `Open`, every miss is served degraded without touching the planner;
//! after the cooldown one trial request is admitted (`HalfOpen`) and its
//! outcome decides the next state. Planner *panics* count as failures too —
//! they are contained per-request, but three in a row means the planner is
//! sick, not the request.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// EWMA weight of the newest planner latency observation.
const EWMA_ALPHA: f64 = 0.25;

/// Why a cache miss was not admitted to the real planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The load gate was over its high-water mark of in-flight planner time.
    Shed,
    /// The circuit breaker was open (or half-open with a trial in flight).
    BreakerOpen,
}

impl DegradeReason {
    /// Wire spelling used in degraded responses.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradeReason::Shed => "shed",
            DegradeReason::BreakerOpen => "breaker_open",
        }
    }
}

/// Load-shedding gate over estimated in-flight planner milliseconds.
#[derive(Debug)]
pub struct AdmissionGate {
    inner: Mutex<GateState>,
    high_water_ms: f64,
}

#[derive(Debug)]
struct GateState {
    /// Sum of the estimates charged to currently admitted planner runs.
    inflight_ms: f64,
    /// EWMA of observed planner latencies (the per-run charge).
    estimate_ms: f64,
}

/// Receipt for an admitted planner run; hand it back via
/// [`AdmissionGate::release`] (success, failure, or panic — always).
#[derive(Debug)]
#[must_use = "an unreleased permit permanently inflates the in-flight estimate"]
pub struct PlannerPermit {
    charged_ms: f64,
}

impl AdmissionGate {
    /// A gate shedding once estimated in-flight planner time exceeds
    /// `high_water_ms`. `initial_estimate_ms` seeds the EWMA before any
    /// observation exists.
    pub fn new(high_water_ms: u64, initial_estimate_ms: u64) -> AdmissionGate {
        AdmissionGate {
            inner: Mutex::new(GateState {
                inflight_ms: 0.0,
                estimate_ms: (initial_estimate_ms.max(1)) as f64,
            }),
            high_water_ms: high_water_ms.max(1) as f64,
        }
    }

    /// Admits a planner run, charging the current latency estimate, or
    /// returns `None` when the gate is over its high-water mark.
    pub fn try_admit(&self) -> Option<PlannerPermit> {
        let mut s = self.inner.lock().expect("gate poisoned");
        if s.inflight_ms + s.estimate_ms > self.high_water_ms && s.inflight_ms > 0.0 {
            return None;
        }
        // With nothing in flight a single run is always admitted, even if
        // its estimate alone exceeds the mark — shedding everything forever
        // would be a livelock, and one run is the minimum useful probe.
        let charged = s.estimate_ms;
        s.inflight_ms += charged;
        Some(PlannerPermit {
            charged_ms: charged,
        })
    }

    /// Releases an admitted run, folding the observed latency into the
    /// estimate. Call on every exit path, including panics.
    pub fn release(&self, permit: PlannerPermit, observed: Duration) {
        let mut s = self.inner.lock().expect("gate poisoned");
        s.inflight_ms = (s.inflight_ms - permit.charged_ms).max(0.0);
        let observed_ms = observed.as_secs_f64() * 1e3;
        s.estimate_ms = (1.0 - EWMA_ALPHA) * s.estimate_ms + EWMA_ALPHA * observed_ms;
        // Keep the estimate strictly positive so admission math stays sane.
        s.estimate_ms = s.estimate_ms.max(0.001);
    }

    /// Returns an admitted run's capacity without folding an observation
    /// into the estimate — for runs that were admitted but never executed
    /// (e.g. the breaker refused after the gate admitted).
    pub fn cancel(&self, permit: PlannerPermit) {
        let mut s = self.inner.lock().expect("gate poisoned");
        s.inflight_ms = (s.inflight_ms - permit.charged_ms).max(0.0);
    }

    /// Estimated in-flight planner milliseconds right now.
    pub fn inflight_ms(&self) -> f64 {
        self.inner.lock().expect("gate poisoned").inflight_ms
    }

    /// Current per-run latency estimate in milliseconds.
    pub fn estimate_ms(&self) -> f64 {
        self.inner.lock().expect("gate poisoned").estimate_ms
    }
}

/// Breaker states, exposed for stats and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: planner runs admitted, failures counted.
    Closed,
    /// Tripped: misses served degraded until the cooldown elapses.
    Open,
    /// Cooled down: exactly one trial run is in flight.
    HalfOpen,
}

impl BreakerState {
    /// Wire spelling used in stats responses.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    trial_in_flight: bool,
}

/// Circuit breaker over consecutive planner failures (errors or contained
/// panics).
#[derive(Debug)]
pub struct CircuitBreaker {
    inner: Mutex<BreakerInner>,
    threshold: u32,
    cooldown: Duration,
}

impl CircuitBreaker {
    /// Trips after `threshold` consecutive failures; half-opens `cooldown`
    /// after tripping.
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                trial_in_flight: false,
            }),
            threshold: threshold.max(1),
            cooldown,
        }
    }

    /// Whether a planner run may proceed right now. In `Open`, flips to
    /// `HalfOpen` once the cooldown has elapsed and admits exactly one
    /// trial; concurrent calls during the trial are refused.
    pub fn allow(&self) -> bool {
        let mut b = self.inner.lock().expect("breaker poisoned");
        match b.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let cooled = b.opened_at.is_some_and(|t| t.elapsed() >= self.cooldown);
                if cooled {
                    b.state = BreakerState::HalfOpen;
                    b.trial_in_flight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if b.trial_in_flight {
                    false
                } else {
                    b.trial_in_flight = true;
                    true
                }
            }
        }
    }

    /// Records a successful planner run; closes the breaker.
    pub fn record_success(&self) {
        let mut b = self.inner.lock().expect("breaker poisoned");
        b.state = BreakerState::Closed;
        b.consecutive_failures = 0;
        b.opened_at = None;
        b.trial_in_flight = false;
    }

    /// Records a failed planner run (error or contained panic). Returns
    /// `true` when this failure tripped the breaker open.
    pub fn record_failure(&self) -> bool {
        let mut b = self.inner.lock().expect("breaker poisoned");
        match b.state {
            BreakerState::HalfOpen => {
                // The trial failed: straight back to Open, fresh cooldown.
                b.state = BreakerState::Open;
                b.opened_at = Some(Instant::now());
                b.trial_in_flight = false;
                true
            }
            BreakerState::Closed => {
                b.consecutive_failures += 1;
                if b.consecutive_failures >= self.threshold {
                    b.state = BreakerState::Open;
                    b.opened_at = Some(Instant::now());
                    true
                } else {
                    false
                }
            }
            BreakerState::Open => false,
        }
    }

    /// Current state (for stats and tests).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker poisoned").state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_until_the_high_water_mark() {
        let gate = AdmissionGate::new(100, 40);
        let a = gate.try_admit().expect("first run admitted");
        let b = gate.try_admit().expect("second run fits under 100ms");
        // 80ms charged; a third 40ms estimate would cross 100ms.
        assert!(gate.try_admit().is_none(), "third run is shed");
        gate.release(a, Duration::from_millis(40));
        let c = gate.try_admit().expect("released capacity re-admits");
        gate.release(b, Duration::from_millis(40));
        gate.release(c, Duration::from_millis(40));
        assert!(gate.inflight_ms() < 1e-9);
    }

    #[test]
    fn gate_never_starves_an_idle_server() {
        // Estimate far above the mark: with nothing in flight the single
        // probe run must still be admitted.
        let gate = AdmissionGate::new(10, 10_000);
        let p = gate.try_admit().expect("idle gate admits a probe");
        assert!(gate.try_admit().is_none());
        gate.release(p, Duration::from_millis(1));
        assert!(gate.estimate_ms() < 10_000.0, "EWMA folded the 1ms run in");
    }

    #[test]
    fn gate_estimate_tracks_observations() {
        let gate = AdmissionGate::new(1_000, 100);
        for _ in 0..50 {
            let p = gate.try_admit().expect("admitted");
            gate.release(p, Duration::from_millis(10));
        }
        assert!(
            (gate.estimate_ms() - 10.0).abs() < 1.0,
            "EWMA converges near 10ms, got {}",
            gate.estimate_ms()
        );
    }

    #[test]
    fn breaker_trips_after_threshold_and_half_opens() {
        let b = CircuitBreaker::new(3, Duration::from_millis(20));
        assert!(b.allow());
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "open breaker refuses");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow(), "cooldown elapsed: one trial admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "only one trial at a time");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn failed_trial_reopens_with_a_fresh_cooldown() {
        let b = CircuitBreaker::new(1, Duration::from_millis(20));
        assert!(b.record_failure(), "threshold 1 trips immediately");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow());
        assert!(b.record_failure(), "failed trial re-trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "fresh cooldown holds");
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = CircuitBreaker::new(2, Duration::from_millis(5));
        assert!(!b.record_failure());
        b.record_success();
        assert!(!b.record_failure(), "count restarted after success");
        assert_eq!(b.state(), BreakerState::Closed);
    }
}

//! Bounded, resynchronizing line framing for the wire protocol.
//!
//! The protocol is one JSON object per `\n`-terminated line, but the bytes
//! arrive from untrusted sockets: clients split frames at arbitrary byte
//! boundaries, dribble one byte at a time (slow loris), stream an endless
//! line with no newline, interleave garbage, or vanish mid-frame. The old
//! front-end used `BufReader::read_line` with a `take` cap, which had two
//! fault-discipline holes: a read timeout mid-line *discarded the partial
//! line* (data loss for any client slower than the poll tick), and an
//! oversized line killed the connection even though the next newline is a
//! perfectly good resynchronization point.
//!
//! [`FrameReader`] fixes both. It owns the partial-frame buffer across
//! timeouts, enforces the [`MAX_FRAME_BYTES`] cap by *discarding through the
//! next newline* (typed [`FrameError::Oversized`], then the stream is back
//! in sync), reports how long the current frame has been in flight so the
//! server can shed slow-loris clients with a typed error instead of pinning
//! a worker, and surfaces every failure as a typed [`FrameError`] the server
//! maps onto wire-level error codes. Invalid UTF-8 is replaced rather than
//! fatal: garbage bytes become a JSON parse error one layer up, and the
//! connection survives.

use std::io::Read;
use std::time::{Duration, Instant};

/// Upper bound on one frame (request line), in bytes. Anything longer is
/// discarded through its terminating newline and reported as
/// [`FrameError::Oversized`]; the reader then resynchronizes on the next
/// frame.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// One successfully framed unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (terminator stripped, lossy UTF-8) within the cap.
    Line(String),
    /// The peer closed cleanly with no partial frame outstanding.
    Eof,
}

/// Typed framing failures. None of these are silent: the server answers
/// recoverable ones on the wire and closes the connection for the rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A frame exceeded the cap. `discarded` bytes were skipped; the reader
    /// has resynchronized at the next newline and can keep framing.
    Oversized {
        /// Bytes discarded, including the terminating newline when present.
        discarded: usize,
    },
    /// The underlying read timed out before a complete frame arrived.
    /// `mid_frame` distinguishes an idle keep-alive connection (no bytes
    /// outstanding) from a stalled partial frame.
    TimedOut {
        /// True when a partial frame is buffered (or being discarded).
        mid_frame: bool,
    },
    /// The current frame has been in flight longer than the caller's frame
    /// timeout: a byte-dribbling or stalled client. The connection should be
    /// shed with a typed error.
    SlowFrame {
        /// Bytes of the stalled partial frame received so far.
        partial: usize,
    },
    /// The peer closed mid-frame; the partial bytes are dropped. The next
    /// call reports [`Frame::Eof`].
    Truncated {
        /// Bytes of the incomplete frame that were discarded.
        partial: usize,
    },
    /// Any other transport error.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { discarded } => write!(
                f,
                "frame exceeds the {MAX_FRAME_BYTES}-byte limit ({discarded} bytes discarded)"
            ),
            FrameError::TimedOut { mid_frame } => {
                write!(f, "read timed out (mid_frame: {mid_frame})")
            }
            FrameError::SlowFrame { partial } => {
                write!(f, "frame stalled after {partial} bytes")
            }
            FrameError::Truncated { partial } => {
                write!(f, "peer closed mid-frame ({partial} bytes dropped)")
            }
            FrameError::Io(kind) => write!(f, "transport error: {kind}"),
        }
    }
}

/// A line framer over an arbitrary `Read` that survives timeouts, enforces
/// the size cap with resynchronization, and tracks frame age for slow-client
/// shedding.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    /// Bytes of the current (incomplete) frame.
    buf: Vec<u8>,
    /// Prefix of `buf` already scanned for a newline.
    scanned: usize,
    /// When > 0, the reader is discarding an oversized frame and holds the
    /// count of bytes dropped so far.
    discarding: usize,
    /// Instant the first byte of the current frame arrived.
    frame_started: Option<Instant>,
    max_frame: usize,
    /// Set once EOF is observed so follow-up calls return [`Frame::Eof`].
    eof: bool,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner` with the default [`MAX_FRAME_BYTES`] cap.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader::with_max_frame(inner, MAX_FRAME_BYTES)
    }

    /// Wraps `inner` with an explicit frame cap (min 1).
    pub fn with_max_frame(inner: R, max_frame: usize) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: Vec::new(),
            scanned: 0,
            discarding: 0,
            frame_started: None,
            max_frame: max_frame.max(1),
            eof: false,
        }
    }

    /// How long the current partial frame has been in flight (`None` when
    /// no frame is outstanding).
    pub fn frame_age(&self) -> Option<Duration> {
        self.frame_started.map(|t| t.elapsed())
    }

    /// Bytes of the current partial frame (discarded bytes count while an
    /// oversized frame is being skipped).
    pub fn partial_len(&self) -> usize {
        self.discarding + self.buf.len()
    }

    /// Reads the next frame.
    ///
    /// `frame_timeout` bounds how long one frame may stay in flight: when a
    /// partial frame is older, the call fails with [`FrameError::SlowFrame`]
    /// even if bytes are still trickling in — that is the slow-loris guard.
    /// A `None` timeout never sheds.
    ///
    /// # Errors
    ///
    /// See [`FrameError`]. After [`FrameError::Oversized`] the reader is
    /// resynchronized and can keep framing; after
    /// [`FrameError::TimedOut`] the partial frame is preserved and the call
    /// can simply be repeated.
    pub fn read_frame(&mut self, frame_timeout: Option<Duration>) -> Result<Frame, FrameError> {
        loop {
            // A newline already buffered completes a frame immediately.
            if let Some(pos) = self.buf[self.scanned..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|p| p + self.scanned)
            {
                let drained = pos + 1;
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                self.scanned = 0;
                // Bytes past the newline are the *next* frame, and its clock
                // starts now — clearing it outright would leave a dangling
                // partial that the slow-frame budget can never shed.
                self.frame_started = if self.buf.is_empty() {
                    None
                } else {
                    Some(Instant::now())
                };
                line.pop(); // '\n'
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if self.discarding > 0 {
                    let discarded = self.discarding + drained;
                    self.discarding = 0;
                    return Err(FrameError::Oversized { discarded });
                }
                // The cap applies even when the whole oversized line landed
                // in one read: a complete-but-too-long frame is discarded,
                // and the stream is already in sync at the next byte.
                if line.len() > self.max_frame {
                    return Err(FrameError::Oversized { discarded: drained });
                }
                return Ok(Frame::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            self.scanned = self.buf.len();
            if self.eof {
                return Ok(Frame::Eof);
            }
            // Over the cap with no newline yet: flip to discard mode. The
            // buffered prefix is dropped; scanning continues on fresh bytes
            // until the terminator restores sync.
            if self.discarding == 0 && self.buf.len() > self.max_frame {
                self.discarding = self.buf.len();
                self.buf.clear();
                self.scanned = 0;
            }
            // Shed a frame that has been dribbling longer than the budget.
            if let (Some(timeout), Some(started)) = (frame_timeout, self.frame_started) {
                if started.elapsed() > timeout {
                    let partial = self.partial_len();
                    self.reset_frame();
                    return Err(FrameError::SlowFrame { partial });
                }
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    if self.discarding > 0 {
                        let discarded = self.discarding;
                        self.discarding = 0;
                        self.frame_started = None;
                        return Err(FrameError::Oversized { discarded });
                    }
                    if self.buf.is_empty() {
                        return Ok(Frame::Eof);
                    }
                    let partial = self.buf.len();
                    self.reset_frame();
                    return Err(FrameError::Truncated { partial });
                }
                Ok(n) => {
                    if self.frame_started.is_none() {
                        self.frame_started = Some(Instant::now());
                    }
                    if self.discarding > 0 {
                        // Count dropped bytes but only buffer past the next
                        // newline (found by the scan at loop top if present).
                        match chunk[..n].iter().position(|&b| b == b'\n') {
                            Some(i) => {
                                self.discarding += i + 1;
                                let discarded = self.discarding;
                                self.discarding = 0;
                                self.buf.extend_from_slice(&chunk[i + 1..n]);
                                self.scanned = 0;
                                // Same next-frame clock rule as the drain
                                // above: resync bytes start a fresh frame.
                                self.frame_started = if self.buf.is_empty() {
                                    None
                                } else {
                                    Some(Instant::now())
                                };
                                return Err(FrameError::Oversized { discarded });
                            }
                            None => self.discarding += n,
                        }
                    } else {
                        self.buf.extend_from_slice(&chunk[..n]);
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(FrameError::TimedOut {
                        mid_frame: self.partial_len() > 0,
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.reset_frame();
                    return Err(FrameError::Io(e.kind()));
                }
            }
        }
    }

    fn reset_frame(&mut self) {
        self.buf.clear();
        self.scanned = 0;
        self.discarding = 0;
        self.frame_started = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frames(input: &[u8], max: usize) -> Vec<Result<Frame, FrameError>> {
        let mut r = FrameReader::with_max_frame(Cursor::new(input.to_vec()), max);
        let mut out = Vec::new();
        loop {
            let f = r.read_frame(None);
            let eof = matches!(f, Ok(Frame::Eof));
            out.push(f);
            if eof {
                break;
            }
        }
        out
    }

    #[test]
    fn whole_lines_frame_in_order() {
        let out = frames(b"alpha\nbeta\r\ngamma\n", 64);
        assert_eq!(
            out,
            vec![
                Ok(Frame::Line("alpha".into())),
                Ok(Frame::Line("beta".into())),
                Ok(Frame::Line("gamma".into())),
                Ok(Frame::Eof),
            ]
        );
    }

    #[test]
    fn oversized_frames_resynchronize_at_the_next_newline() {
        let mut input = vec![b'x'; 100];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let out = frames(&input, 16);
        assert_eq!(
            out,
            vec![
                Err(FrameError::Oversized { discarded: 101 }),
                Ok(Frame::Line("ok".into())),
                Ok(Frame::Eof),
            ]
        );
    }

    #[test]
    fn oversized_frame_at_eof_reports_then_ends() {
        let out = frames(&vec![b'x'; 100], 16);
        assert_eq!(
            out,
            vec![
                Err(FrameError::Oversized { discarded: 100 }),
                Ok(Frame::Eof)
            ]
        );
    }

    #[test]
    fn truncated_frames_are_typed_then_eof() {
        let out = frames(b"good\npartial", 64);
        assert_eq!(
            out,
            vec![
                Ok(Frame::Line("good".into())),
                Err(FrameError::Truncated { partial: 7 }),
                Ok(Frame::Eof),
            ]
        );
    }

    #[test]
    fn invalid_utf8_is_lossy_not_fatal() {
        let out = frames(b"\xff\xfe{bad}\nok\n", 64);
        assert!(matches!(&out[0], Ok(Frame::Line(s)) if s.contains("{bad}")));
        assert_eq!(out[1], Ok(Frame::Line("ok".into())));
    }

    /// A reader that yields WouldBlock between single-byte reads, emulating
    /// a socket with a read timeout under a dribbling client.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        turn: bool,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            self.turn = !self.turn;
            if self.turn {
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "tick"));
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn partial_frames_survive_timeouts() {
        let mut r = FrameReader::with_max_frame(
            Dribble {
                data: b"hi\n".to_vec(),
                pos: 0,
                turn: false,
            },
            64,
        );
        let mut timeouts = 0;
        loop {
            match r.read_frame(None) {
                Ok(Frame::Line(s)) => {
                    assert_eq!(s, "hi");
                    break;
                }
                Err(FrameError::TimedOut { .. }) => timeouts += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(timeouts > 0, "the dribble must have ticked");
    }

    #[test]
    fn slow_frames_are_shed_once_over_budget() {
        // The dribble never finishes a line; a zero frame budget sheds it on
        // the first mid-frame wait.
        let mut r = FrameReader::with_max_frame(
            Dribble {
                data: b"never-terminated".to_vec(),
                pos: 0,
                turn: false,
            },
            64,
        );
        let shed = loop {
            match r.read_frame(Some(Duration::ZERO)) {
                Err(FrameError::SlowFrame { partial }) => break partial,
                Err(FrameError::TimedOut { .. }) | Ok(_) => {}
                other => panic!("unexpected {other:?}"),
            }
        };
        assert!(shed > 0, "partial bytes were counted");
    }
}

#[cfg(test)]
mod review_probe {
    use super::*;

    struct BurstThenSilent {
        data: Vec<u8>,
        sent: bool,
    }
    impl Read for BurstThenSilent {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.sent {
                self.sent = true;
                let n = self.data.len().min(buf.len());
                buf[..n].copy_from_slice(&self.data[..n]);
                return Ok(n);
            }
            Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "tick"))
        }
    }

    #[test]
    fn trailing_partial_after_complete_line_is_shed() {
        let mut r = FrameReader::with_max_frame(
            BurstThenSilent {
                data: b"req1\npartial".to_vec(),
                sent: false,
            },
            64,
        );
        assert_eq!(
            r.read_frame(Some(Duration::ZERO)).unwrap(),
            Frame::Line("req1".into())
        );
        // The partial second frame arrived in the same burst; with a ZERO
        // frame budget it must be shed as SlowFrame, not spin TimedOut.
        let mut saw_slow = false;
        for _ in 0..5 {
            match r.read_frame(Some(Duration::ZERO)) {
                Err(FrameError::SlowFrame { .. }) => {
                    saw_slow = true;
                    break;
                }
                Err(FrameError::TimedOut { mid_frame }) => assert!(mid_frame),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(
            saw_slow,
            "dangling partial frame never shed: frame_started was cleared"
        );
    }
}

//! Batch canonicalization: the cache key and the re-indexing that makes a
//! canonical plan serve any batch with the same length multiset.
//!
//! Every scheduler in the workspace processes sequences in `(length
//! descending, batch index ascending)` order, so its decisions depend only
//! on the *sorted* lengths plus the context — the batch's order never
//! matters. The cache exploits this: it plans the canonical (descending)
//! batch once, and on a hit maps each placement's `seq_index` through the
//! requesting batch's sort permutation. For index-faithful plans the result
//! is placement-identical to planning the original batch directly.

use zeppelin_core::plan::IterationPlan;
use zeppelin_core::scheduler::SchedulerCtx;
use zeppelin_data::batch::Batch;

/// A batch reduced to its sorted length multiset plus the permutation that
/// recovers the original ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalBatch {
    /// Lengths sorted descending — the cache-key component.
    pub lens: Vec<u64>,
    /// `perm[i]` = original batch index of the `i`-th canonical sequence.
    /// Ties are broken by ascending original index, matching the stable
    /// sort every scheduler applies internally.
    pub perm: Vec<usize>,
}

impl CanonicalBatch {
    /// Canonicalizes a batch.
    pub fn new(batch: &Batch) -> CanonicalBatch {
        let mut perm: Vec<usize> = (0..batch.seqs.len()).collect();
        perm.sort_by(|&a, &b| batch.seqs[b].cmp(&batch.seqs[a]).then(a.cmp(&b)));
        let lens = perm.iter().map(|&i| batch.seqs[i]).collect();
        CanonicalBatch { lens, perm }
    }

    /// The canonical batch itself (lengths descending), as planned on a miss.
    pub fn to_batch(&self) -> Batch {
        Batch::new(self.lens.clone())
    }

    /// True when the batch was already in canonical order, so the canonical
    /// plan serves it verbatim (the cache's zero-copy fast path).
    pub fn is_identity(&self) -> bool {
        self.perm.iter().enumerate().all(|(i, &j)| i == j)
    }
}

/// True when `plan` (produced for the canonical batch with lengths `lens`)
/// references real batch sequences: every placement's `seq_index` names a
/// sequence, every sequence is covered, and the fragment lengths of each
/// sequence sum back to its length. Packing-style plans with synthetic
/// window ids fail this and are served verbatim instead of re-indexed.
pub fn is_index_faithful(plan: &IterationPlan, lens: &[u64]) -> bool {
    let mut per_seq = vec![0u64; lens.len()];
    for p in &plan.placements {
        let Some(slot) = per_seq.get_mut(p.seq_index) else {
            return false;
        };
        *slot += p.len;
    }
    per_seq == lens
}

/// Rewrites a canonical plan's placements for the original batch order:
/// each `seq_index` maps through `perm`, and placements are re-sorted by
/// the mapped index (stably, preserving fragment order), matching the
/// `sort_by_key(seq_index)` pass every scheduler finishes with.
pub fn reindex_plan(plan: &IterationPlan, canonical: &CanonicalBatch) -> IterationPlan {
    let mut out = plan.clone();
    for p in &mut out.placements {
        p.seq_index = canonical.perm[p.seq_index];
    }
    out.placements.sort_by_key(|p| p.seq_index);
    out
}

/// Fixed-point scale for rank-speed quantization in [`CtxSignature`].
const SPEED_QUANTUM: f64 = 1024.0;

/// A hashable signature of everything in a [`SchedulerCtx`] that can change
/// a plan. Hardware rates are captured exactly (f64 bit patterns — presets
/// are constants, not measurements); per-rank speed factors are quantized
/// to 1/1024 so jittery straggler estimates within a quantum still share
/// cache entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CtxSignature {
    cluster_name: String,
    nodes: usize,
    gpus_per_node: usize,
    peak_flops: u64,
    mem_bytes: u64,
    nvlink_bw: u64,
    pcie_bw: u64,
    nic_count: usize,
    nic_bw: u64,
    nic_affinity: Vec<usize>,
    model_name: String,
    hidden: usize,
    num_heads: usize,
    ffn_hidden: usize,
    layers: usize,
    vocab: usize,
    dtype_bytes: usize,
    moe: Option<(usize, usize, usize)>,
    capacity: u64,
    rank_speed: Option<Vec<i64>>,
}

impl CtxSignature {
    /// Builds the signature for a context.
    pub fn new(ctx: &SchedulerCtx) -> CtxSignature {
        let node = &ctx.cluster.node;
        CtxSignature {
            cluster_name: ctx.cluster.name.clone(),
            nodes: ctx.cluster.nodes,
            gpus_per_node: node.gpus_per_node,
            peak_flops: node.gpu.peak_flops.to_bits(),
            mem_bytes: node.gpu.mem_bytes,
            nvlink_bw: node.gpu.nvlink_bw.to_bits(),
            pcie_bw: node.gpu.pcie_bw.to_bits(),
            nic_count: node.nic_count,
            nic_bw: node.nic.bw.to_bits(),
            nic_affinity: node.nic_affinity.clone(),
            model_name: ctx.model.name.clone(),
            hidden: ctx.model.hidden,
            num_heads: ctx.model.num_heads,
            ffn_hidden: ctx.model.ffn_hidden,
            layers: ctx.model.layers,
            vocab: ctx.model.vocab,
            dtype_bytes: ctx.model.dtype_bytes,
            moe: ctx
                .model
                .moe
                .as_ref()
                .map(|m| (m.num_experts, m.top_k, m.expert_ffn_hidden)),
            capacity: ctx.capacity,
            rank_speed: ctx.rank_speed.as_ref().map(|speeds| {
                speeds
                    .iter()
                    .map(|s| (s * SPEED_QUANTUM).round() as i64)
                    .collect()
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_core::scheduler::Scheduler;
    use zeppelin_core::zeppelin::Zeppelin;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    #[test]
    fn canonicalization_sorts_descending_with_stable_ties() {
        let batch = Batch::new(vec![500, 9000, 500, 40_000]);
        let c = CanonicalBatch::new(&batch);
        assert_eq!(c.lens, vec![40_000, 9000, 500, 500]);
        // Equal lengths keep ascending original indices.
        assert_eq!(c.perm, vec![3, 1, 0, 2]);
        assert_eq!(c.to_batch().seqs, c.lens);
    }

    #[test]
    fn reindex_recovers_original_batch_plan() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192);
        let batch = Batch::new(vec![700, 12_000, 700, 30_000, 2500]);
        let canonical = CanonicalBatch::new(&batch);
        let canon_plan = Zeppelin::new().plan(&canonical.to_batch(), &ctx).unwrap();
        assert!(is_index_faithful(&canon_plan, &canonical.lens));
        let direct = Zeppelin::new().plan(&batch, &ctx).unwrap();
        assert_eq!(reindex_plan(&canon_plan, &canonical), direct);
    }

    #[test]
    fn synthetic_indices_are_not_faithful() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192);
        let batch = Batch::new(vec![400, 300, 200, 100]);
        let plan = zeppelin_baselines::Packing::new()
            .plan(&batch, &ctx)
            .unwrap();
        // Packing fuses short sequences into windows with synthetic ids.
        assert!(!is_index_faithful(&plan, &CanonicalBatch::new(&batch).lens));
    }

    #[test]
    fn signature_distinguishes_material_context_changes() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b());
        let base = CtxSignature::new(&ctx);
        assert_eq!(base, CtxSignature::new(&ctx.clone()));
        let capped = CtxSignature::new(&ctx.clone().with_capacity(1234));
        assert_ne!(base, capped);
        let slow = CtxSignature::new(&ctx.clone().with_rank_speed(vec![1.0; 16]));
        assert_ne!(base, slow);
        // Speeds within a quantum share a signature.
        let a = CtxSignature::new(&ctx.clone().with_rank_speed(vec![1.00001; 16]));
        let b = CtxSignature::new(&ctx.clone().with_rank_speed(vec![1.00002; 16]));
        assert_eq!(a, b);
    }

    #[test]
    fn tiered_clusters_never_alias_homogeneous_cache_entries() {
        use zeppelin_sim::topology::{cluster_b, A800_RELATIVE_SPEED};
        // Same blueprint, same name — only the node tiers differ. The
        // tier-seeded rank_speed must separate the signatures.
        let model = llama_3b();
        let tiered = cluster_b(3).with_node_tiers(vec![A800_RELATIVE_SPEED, 1.0, 1.0]);
        let a = CtxSignature::new(&SchedulerCtx::new(&tiered, &model));
        let b = CtxSignature::new(&SchedulerCtx::new(&cluster_b(3), &model));
        assert_ne!(a, b);
    }
}

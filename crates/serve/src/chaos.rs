//! Seeded chaos harness for the serving front-end.
//!
//! A [`ServeFaultSchedule`] scripts adversarial client and planner behavior
//! — connections dropped mid-request, byte-dribbling slow clients, malformed
//! and oversized frames, injected planner stalls and panics — drawn
//! deterministically from a seed ([`ServeFaultSchedule::random`]) and
//! validated before use, in the same idiom as the simulator's
//! infrastructure-fault schedules (`zeppelin_sim::fault`). The loopback
//! runner ([`run_chaos`]) boots a real server with chaos-tuned (short)
//! timeouts, fires every event against it over TCP, and checks the serving
//! invariants the fault-tolerance layer promises:
//!
//! 1. every fault resolves **typed** — an error response with a machine
//!    code, a degraded plan, or a clean close — within the SLO; nothing
//!    hangs;
//! 2. the worker pool never shrinks: after the storm, every worker answers
//!    a concurrent liveness probe;
//! 3. the server recovers: a clean post-chaos request is served `ok` with
//!    `degraded: false` within the SLO.
//!
//! Planner faults are injected through [`PlannerChaos`], a queue the server
//! consumes at the top of each *primary* planner run. When admission control
//! or the circuit breaker bypasses the primary planner, the queued fault is
//! not consumed; the runner drains leftovers after each event
//! ([`PlannerChaos::take_pending`]) so a fault aimed at event N can never
//! fire during the post-chaos recovery check.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use zeppelin_core::plan_io::{parse_json, Json};

use crate::frame::MAX_FRAME_BYTES;
use crate::protocol::{response_error_code, ErrorCode, Request};
use crate::server::{Server, ServerConfig, ServerReport};

/// One injected planner-side fault, consumed at the top of a primary
/// planner run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerFault {
    /// The planner stalls for this many milliseconds before planning.
    Stall {
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// The planner panics.
    Panic,
}

/// A queue of planner faults the server consumes on each primary planner
/// run (injected via [`ServerConfig::chaos`]; `None` in production).
#[derive(Debug, Default)]
pub struct PlannerChaos {
    queue: Mutex<VecDeque<PlannerFault>>,
}

impl PlannerChaos {
    /// An empty fault queue.
    pub fn new() -> PlannerChaos {
        PlannerChaos::default()
    }

    /// Queues a planner stall of `ms` milliseconds.
    pub fn push_stall(&self, ms: u64) {
        self.queue
            .lock()
            .expect("chaos poisoned")
            .push_back(PlannerFault::Stall { ms });
    }

    /// Queues a planner panic.
    pub fn push_panic(&self) {
        self.queue
            .lock()
            .expect("chaos poisoned")
            .push_back(PlannerFault::Panic);
    }

    /// Consumes and enacts the next queued fault, if any. Called by the
    /// server at the top of each primary planner run.
    ///
    /// # Panics
    ///
    /// Panics (on purpose) when the next fault is [`PlannerFault::Panic`] —
    /// the server's containment turns it into a typed `worker_panicked`
    /// response.
    pub fn before_plan(&self) {
        let fault = self.queue.lock().expect("chaos poisoned").pop_front();
        match fault {
            Some(PlannerFault::Stall { ms }) => {
                std::thread::sleep(Duration::from_millis(ms));
            }
            Some(PlannerFault::Panic) => panic!("chaos: injected planner panic"),
            None => {}
        }
    }

    /// Drains faults that were queued but never consumed (the primary
    /// planner was bypassed by shedding or an open breaker). The runner
    /// calls this after each planner-fault event so leftovers cannot fire
    /// during later events or the recovery check.
    pub fn take_pending(&self) -> Vec<PlannerFault> {
        self.queue
            .lock()
            .expect("chaos poisoned")
            .drain(..)
            .collect()
    }

    /// Faults currently queued.
    pub fn pending(&self) -> usize {
        self.queue.lock().expect("chaos poisoned").len()
    }
}

/// One scripted fault against the serving front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeFault {
    /// A well-formed plan request (the control case: chaos schedules mix
    /// clean traffic between faults so recovery is exercised mid-storm).
    CleanPlan {
        /// Sequence lengths to plan.
        seqs: Vec<u64>,
    },
    /// Connect, write a prefix of a request line, and drop the connection
    /// without ever sending the newline.
    DropMidRequest {
        /// How many bytes of the request line to send before dropping.
        bytes: usize,
    },
    /// A slow-loris client: the request line is dribbled a byte at a time
    /// until the server's per-frame budget sheds the connection.
    ByteDribble {
        /// Sequence lengths of the (never completed) plan request.
        seqs: Vec<u64>,
        /// Delay between bytes, milliseconds.
        gap_ms: u64,
    },
    /// A syntactically hostile frame (invalid JSON / unknown op); must be
    /// answered with a typed `bad_request`.
    MalformedFrame {
        /// The garbage payload (no newline; the runner appends it).
        payload: String,
    },
    /// A line exceeding the frame cap, followed by a valid plan request on
    /// the same connection: the server must answer `frame_oversized`,
    /// resynchronize, and then serve the valid request.
    OversizedFrame {
        /// Oversized line length in bytes (> [`MAX_FRAME_BYTES`]).
        bytes: usize,
        /// The follow-up plan request proving resynchronization.
        seqs: Vec<u64>,
    },
    /// An injected planner stall longer than the request's deadline: the
    /// server must answer `deadline_exceeded` (or serve degraded if the
    /// planner was bypassed), never ship late.
    PlannerStall {
        /// Stall duration, milliseconds.
        ms: u64,
        /// Request deadline, milliseconds (strictly less than `ms`).
        deadline_ms: u64,
        /// Sequence lengths (unique per event so the cache cannot absorb
        /// the fault).
        seqs: Vec<u64>,
    },
    /// An injected planner panic: the server must answer a typed
    /// `worker_panicked` (or serve degraded if the planner was bypassed)
    /// and keep the worker.
    PlannerPanic {
        /// Sequence lengths (unique per event, as above).
        seqs: Vec<u64>,
    },
}

impl ServeFault {
    /// Short wire-style tag for logs.
    pub fn tag(&self) -> &'static str {
        match self {
            ServeFault::CleanPlan { .. } => "clean_plan",
            ServeFault::DropMidRequest { .. } => "drop_mid_request",
            ServeFault::ByteDribble { .. } => "byte_dribble",
            ServeFault::MalformedFrame { .. } => "malformed_frame",
            ServeFault::OversizedFrame { .. } => "oversized_frame",
            ServeFault::PlannerStall { .. } => "planner_stall",
            ServeFault::PlannerPanic { .. } => "planner_panic",
        }
    }

    /// One deterministic log line describing the event.
    pub fn describe(&self) -> String {
        match self {
            ServeFault::CleanPlan { seqs } => {
                format!("clean_plan seqs={seqs:?}")
            }
            ServeFault::DropMidRequest { bytes } => {
                format!("drop_mid_request bytes={bytes}")
            }
            ServeFault::ByteDribble { seqs, gap_ms } => {
                format!("byte_dribble seqs={} gap_ms={gap_ms}", seqs.len())
            }
            ServeFault::MalformedFrame { payload } => {
                format!("malformed_frame len={}", payload.len())
            }
            ServeFault::OversizedFrame { bytes, seqs } => {
                format!("oversized_frame bytes={bytes} then seqs={seqs:?}")
            }
            ServeFault::PlannerStall {
                ms,
                deadline_ms,
                seqs,
            } => format!("planner_stall ms={ms} deadline_ms={deadline_ms} seqs={seqs:?}"),
            ServeFault::PlannerPanic { seqs } => {
                format!("planner_panic seqs={seqs:?}")
            }
        }
    }
}

/// A deterministic script of serving faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeFaultSchedule {
    /// The seed the schedule was drawn from (0 for hand-built schedules).
    pub seed: u64,
    events: Vec<ServeFault>,
}

/// Hard bounds a valid schedule must respect (all enforced by
/// [`ServeFaultSchedule::validate`]).
pub mod limits {
    /// Most events one schedule may script.
    pub const MAX_EVENTS: usize = 64;
    /// Most sequences one scripted plan request may carry.
    pub const MAX_EVENT_SEQS: usize = 64;
    /// Longest scripted sequence length.
    pub const MAX_SEQ_LEN: u64 = 16_384;
    /// Longest injected planner stall, milliseconds.
    pub const MAX_STALL_MS: u64 = 800;
    /// Largest oversized-frame payload (4 × the frame cap).
    pub const MAX_OVERSIZED_BYTES: usize = 4 * super::MAX_FRAME_BYTES;
    /// Largest mid-request drop prefix, bytes.
    pub const MAX_DROP_BYTES: usize = 4_096;
    /// Largest malformed payload, bytes.
    pub const MAX_MALFORMED_BYTES: usize = 4_096;
    /// Largest dribble gap, milliseconds.
    pub const MAX_GAP_MS: u64 = 200;
}

impl ServeFaultSchedule {
    /// An empty schedule (valid only after events are added).
    pub fn new() -> ServeFaultSchedule {
        ServeFaultSchedule::default()
    }

    /// The scripted events, in execution order.
    pub fn events(&self) -> &[ServeFault] {
        &self.events
    }

    /// True when nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an event.
    pub fn push(&mut self, ev: ServeFault) -> &mut Self {
        self.events.push(ev);
        self
    }

    /// Builder: clean plan request.
    pub fn clean_plan(mut self, seqs: Vec<u64>) -> Self {
        self.events.push(ServeFault::CleanPlan { seqs });
        self
    }

    /// Builder: connection dropped `bytes` into a request line.
    pub fn drop_mid_request(mut self, bytes: usize) -> Self {
        self.events.push(ServeFault::DropMidRequest { bytes });
        self
    }

    /// Builder: slow-loris dribble.
    pub fn byte_dribble(mut self, seqs: Vec<u64>, gap_ms: u64) -> Self {
        self.events.push(ServeFault::ByteDribble { seqs, gap_ms });
        self
    }

    /// Builder: malformed frame.
    pub fn malformed_frame(mut self, payload: impl Into<String>) -> Self {
        self.events.push(ServeFault::MalformedFrame {
            payload: payload.into(),
        });
        self
    }

    /// Builder: oversized frame followed by a valid request.
    pub fn oversized_frame(mut self, bytes: usize, seqs: Vec<u64>) -> Self {
        self.events.push(ServeFault::OversizedFrame { bytes, seqs });
        self
    }

    /// Builder: planner stall past the request deadline.
    pub fn planner_stall(mut self, ms: u64, deadline_ms: u64, seqs: Vec<u64>) -> Self {
        self.events.push(ServeFault::PlannerStall {
            ms,
            deadline_ms,
            seqs,
        });
        self
    }

    /// Builder: planner panic.
    pub fn planner_panic(mut self, seqs: Vec<u64>) -> Self {
        self.events.push(ServeFault::PlannerPanic { seqs });
        self
    }

    /// One log line per event — the deterministic event log the replay
    /// test compares across same-seed draws.
    pub fn event_log(&self) -> Vec<String> {
        self.events
            .iter()
            .enumerate()
            .map(|(i, ev)| format!("[{i:02}] {}", ev.describe()))
            .collect()
    }

    /// Checks every event against the harness bounds in [`limits`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first offending event.
    pub fn validate(&self) -> Result<(), String> {
        if self.events.is_empty() {
            return Err("schedule has no events".to_string());
        }
        if self.events.len() > limits::MAX_EVENTS {
            return Err(format!(
                "schedule has {} events, over the {} limit",
                self.events.len(),
                limits::MAX_EVENTS
            ));
        }
        let check_seqs = |seqs: &[u64], what: &str| {
            if seqs.is_empty() {
                return Err(format!("{what} has an empty 'seqs'"));
            }
            if seqs.len() > limits::MAX_EVENT_SEQS {
                return Err(format!(
                    "{what} has {} seqs, over the {} limit",
                    seqs.len(),
                    limits::MAX_EVENT_SEQS
                ));
            }
            if let Some(&bad) = seqs.iter().find(|&&s| s == 0 || s > limits::MAX_SEQ_LEN) {
                return Err(format!(
                    "{what} has seq length {bad} outside [1, {}]",
                    limits::MAX_SEQ_LEN
                ));
            }
            Ok(())
        };
        for (i, ev) in self.events.iter().enumerate() {
            let what = format!("event {i} ({})", ev.tag());
            match ev {
                ServeFault::CleanPlan { seqs } => check_seqs(seqs, &what)?,
                ServeFault::DropMidRequest { bytes } => {
                    if *bytes == 0 || *bytes > limits::MAX_DROP_BYTES {
                        return Err(format!(
                            "{what}: drop prefix {bytes} outside [1, {}]",
                            limits::MAX_DROP_BYTES
                        ));
                    }
                }
                ServeFault::ByteDribble { seqs, gap_ms } => {
                    check_seqs(seqs, &what)?;
                    if *gap_ms == 0 || *gap_ms > limits::MAX_GAP_MS {
                        return Err(format!(
                            "{what}: gap {gap_ms}ms outside [1, {}]",
                            limits::MAX_GAP_MS
                        ));
                    }
                }
                ServeFault::MalformedFrame { payload } => {
                    if payload.is_empty() || payload.len() > limits::MAX_MALFORMED_BYTES {
                        return Err(format!(
                            "{what}: payload length {} outside [1, {}]",
                            payload.len(),
                            limits::MAX_MALFORMED_BYTES
                        ));
                    }
                    if payload.contains('\n') {
                        return Err(format!("{what}: payload must be a single line"));
                    }
                }
                ServeFault::OversizedFrame { bytes, seqs } => {
                    check_seqs(seqs, &what)?;
                    if *bytes <= MAX_FRAME_BYTES || *bytes > limits::MAX_OVERSIZED_BYTES {
                        return Err(format!(
                            "{what}: oversized length {bytes} outside ({MAX_FRAME_BYTES}, {}]",
                            limits::MAX_OVERSIZED_BYTES
                        ));
                    }
                }
                ServeFault::PlannerStall {
                    ms,
                    deadline_ms,
                    seqs,
                } => {
                    check_seqs(seqs, &what)?;
                    if *ms == 0 || *ms > limits::MAX_STALL_MS {
                        return Err(format!(
                            "{what}: stall {ms}ms outside [1, {}]",
                            limits::MAX_STALL_MS
                        ));
                    }
                    if *deadline_ms == 0 || deadline_ms >= ms {
                        return Err(format!(
                            "{what}: deadline {deadline_ms}ms must be in [1, stall)"
                        ));
                    }
                }
                ServeFault::PlannerPanic { seqs } => check_seqs(seqs, &what)?,
            }
        }
        Ok(())
    }

    /// Draws a `count`-event schedule from `seed` — deterministic per seed
    /// (the replay suite relies on this), always valid, and always mixing
    /// clean traffic between faults. Plan-carrying events draw unique
    /// sequence multisets so the cache cannot absorb a planner fault.
    pub fn random(seed: u64, count: usize) -> ServeFaultSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = count.clamp(1, limits::MAX_EVENTS);
        let mut out = ServeFaultSchedule {
            seed,
            events: Vec::with_capacity(count),
        };
        // Uniqueness salt: each plan-carrying event perturbs its lengths by
        // a fresh counter so no two events share a cache key.
        let mut salt: u64 = 0;
        let fresh_seqs = |rng: &mut StdRng, salt: &mut u64| {
            *salt += 1;
            let n = rng.random_range(1usize..=8);
            (0..n)
                .map(|i| {
                    let base = rng.random_range(64u64..=8_192);
                    (base + *salt * 17 + i as u64).min(limits::MAX_SEQ_LEN)
                })
                .collect::<Vec<u64>>()
        };
        for i in 0..count {
            // Every third event is clean traffic: recovery is exercised
            // between faults, not only after the storm.
            if i % 3 == 2 {
                let seqs = fresh_seqs(&mut rng, &mut salt);
                out.events.push(ServeFault::CleanPlan { seqs });
                continue;
            }
            match rng.random_range(0u64..6) {
                0 => out.events.push(ServeFault::DropMidRequest {
                    bytes: rng.random_range(1usize..=64),
                }),
                1 => out.events.push(ServeFault::ByteDribble {
                    seqs: fresh_seqs(&mut rng, &mut salt),
                    gap_ms: rng.random_range(20u64..=60),
                }),
                2 => {
                    let payloads = [
                        "{\"op\":\"fly\"}",
                        "{\"op\":\"plan\",\"seqs\":[0]}",
                        "not json at all",
                        "{\"op\":\"plan\",\"seqs\":\"nope\"}",
                        "{{{{{{",
                    ];
                    let pick = rng.random_range(0u64..payloads.len() as u64) as usize;
                    out.events.push(ServeFault::MalformedFrame {
                        payload: payloads[pick].to_string(),
                    });
                }
                3 => out.events.push(ServeFault::OversizedFrame {
                    bytes: MAX_FRAME_BYTES + rng.random_range(1usize..=MAX_FRAME_BYTES / 4),
                    seqs: fresh_seqs(&mut rng, &mut salt),
                }),
                4 => {
                    let ms = rng.random_range(150u64..=400);
                    let deadline_ms = rng.random_range(10u64..=ms / 2);
                    out.events.push(ServeFault::PlannerStall {
                        ms,
                        deadline_ms,
                        seqs: fresh_seqs(&mut rng, &mut salt),
                    });
                }
                _ => out.events.push(ServeFault::PlannerPanic {
                    seqs: fresh_seqs(&mut rng, &mut salt),
                }),
            }
        }
        out
    }
}

/// How one chaos event resolved at the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventResolution {
    /// A successful plan response (`degraded` records its tag).
    Ok {
        /// Whether the plan was served by the fallback scheduler.
        degraded: bool,
    },
    /// A typed error response.
    TypedError(ErrorCode),
    /// The server closed the connection without a response (legal for
    /// dropped/dribbled clients).
    Closed,
    /// No resolution within the SLO — an invariant violation.
    Hang,
}

/// One line of the runner's event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventOutcome {
    /// Index in the schedule.
    pub index: usize,
    /// The event's [`ServeFault::describe`] line.
    pub event: String,
    /// How it resolved.
    pub resolution: EventResolution,
    /// Wall time to resolution, milliseconds.
    pub elapsed_ms: u64,
    /// Planner faults left unconsumed (drained) after the event.
    pub drained_faults: usize,
}

/// Everything [`run_chaos`] observed, plus the verdict.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The schedule's seed.
    pub seed: u64,
    /// Per-event outcomes, in schedule order.
    pub outcomes: Vec<EventOutcome>,
    /// Invariant violations ("" when everything held).
    pub violations: Vec<String>,
    /// Whether the post-chaos clean request succeeded.
    pub recovered_ok: bool,
    /// Whether the post-chaos clean request was degraded (must be false).
    pub recovered_degraded: bool,
    /// Post-chaos clean-request latency, milliseconds.
    pub recovery_ms: u64,
    /// Workers that answered the concurrent liveness probe.
    pub workers_alive: usize,
    /// Workers the server was configured with.
    pub workers_configured: usize,
    /// The server's final report (metrics + cache) after shutdown.
    pub server: ServerReport,
}

impl ChaosReport {
    /// The chaos invariant: every event resolved typed within the SLO, all
    /// workers answered the liveness probe, and the post-chaos request was
    /// served clean (`ok`, not degraded).
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
            && self.recovered_ok
            && !self.recovered_degraded
            && self.workers_alive == self.workers_configured
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos seed={} events={} violations={}\n",
            self.seed,
            self.outcomes.len(),
            self.violations.len()
        ));
        for o in &self.outcomes {
            out.push_str(&format!(
                "  [{:02}] {:<48} -> {:?} in {}ms (drained {})\n",
                o.index, o.event, o.resolution, o.elapsed_ms, o.drained_faults
            ));
        }
        for v in &self.violations {
            out.push_str(&format!("  VIOLATION: {v}\n"));
        }
        out.push_str(&format!(
            "  recovery: ok={} degraded={} in {}ms; workers {}/{} alive; \
             panics={} respawns={} shed={} degraded_served={} deadline_exceeded={}\n",
            self.recovered_ok,
            self.recovered_degraded,
            self.recovery_ms,
            self.workers_alive,
            self.workers_configured,
            self.server.metrics.worker_panics,
            self.server.metrics.worker_respawns,
            self.server.metrics.shed,
            self.server.metrics.degraded,
            self.server.metrics.deadline_exceeded,
        ));
        out
    }
}

/// Per-event (and recovery) SLO: every fault must resolve within this
/// budget. Generous against the chaos-tuned timeouts (frame budget 150 ms,
/// max stall 800 ms) so slow CI machines do not flake the verdict.
pub const CHAOS_SLO: Duration = Duration::from_secs(5);

/// The chaos-tuned server configuration: real fault machinery, short
/// timeouts, so a full storm runs in seconds.
pub fn chaos_server_config(chaos: Arc<PlannerChaos>) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 3,
        max_queue: 16,
        cache_capacity: 256,
        frame_timeout_ms: 150,
        idle_timeout_ms: 2_000,
        write_timeout_ms: 1_000,
        grace_ms: 400,
        breaker_failures: 3,
        breaker_cooldown_ms: 300,
        planner_highwater_ms: 2_000,
        planner_estimate_ms: 10,
        chaos: Some(chaos),
        ..ServerConfig::default()
    }
}

fn connect(addr: &std::net::SocketAddr) -> std::io::Result<TcpStream> {
    let s = TcpStream::connect_timeout(addr, Duration::from_secs(2))?;
    s.set_read_timeout(Some(CHAOS_SLO))?;
    s.set_write_timeout(Some(Duration::from_secs(2)))?;
    Ok(s)
}

/// Reads one response line within the SLO, classifying the outcome.
fn read_resolution(stream: TcpStream) -> EventResolution {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => EventResolution::Closed,
        Ok(_) => classify_line(line.trim()),
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
            EventResolution::Hang
        }
        // Reset by a server-side close races against our read: a typed
        // close, not a hang.
        Err(_) => EventResolution::Closed,
    }
}

fn classify_line(line: &str) -> EventResolution {
    if let Some(code) = response_error_code(line) {
        return EventResolution::TypedError(code);
    }
    match parse_json(line) {
        Ok(v) if v.get("ok") == Some(&Json::Bool(true)) => EventResolution::Ok {
            degraded: v.get("degraded") == Some(&Json::Bool(true)),
        },
        // An unparseable or ok:false-without-code line is as bad as a hang:
        // the server broke its typed-response promise.
        _ => EventResolution::Hang,
    }
}

fn plan_line(seqs: &[u64], deadline_ms: Option<u64>) -> String {
    let mut req = Request::plan(seqs.to_vec());
    if let Request::Plan {
        deadline_ms: ref mut d,
        ..
    } = req
    {
        *d = deadline_ms;
    }
    req.to_line()
}

/// Executes one scripted fault against the live server.
fn run_event(addr: &std::net::SocketAddr, ev: &ServeFault) -> EventResolution {
    match ev {
        ServeFault::CleanPlan { seqs } => {
            let Ok(mut s) = connect(addr) else {
                return EventResolution::Hang;
            };
            if writeln!(s, "{}", plan_line(seqs, None)).is_err() {
                return EventResolution::Closed;
            }
            read_resolution(s)
        }
        ServeFault::DropMidRequest { bytes } => {
            let Ok(mut s) = connect(addr) else {
                return EventResolution::Hang;
            };
            let line = plan_line(&[1_024, 2_048], None);
            let prefix = &line.as_bytes()[..(*bytes).min(line.len().saturating_sub(1))];
            let _ = s.write_all(prefix);
            let _ = s.flush();
            // Drop without a newline: the server sees a truncated frame and
            // must close its side without burning a worker.
            drop(s);
            EventResolution::Closed
        }
        ServeFault::ByteDribble { seqs, gap_ms } => {
            let Ok(mut s) = connect(addr) else {
                return EventResolution::Hang;
            };
            let line = plan_line(seqs, None);
            for b in line.as_bytes() {
                // The server sheds mid-dribble; keep dribbling into the
                // closed socket (errors expected) so the timing is honest.
                if s.write_all(&[*b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(*gap_ms));
                if s.flush().is_err() {
                    break;
                }
            }
            read_resolution(s)
        }
        ServeFault::MalformedFrame { payload } => {
            let Ok(mut s) = connect(addr) else {
                return EventResolution::Hang;
            };
            if writeln!(s, "{payload}").is_err() {
                return EventResolution::Closed;
            }
            read_resolution(s)
        }
        ServeFault::OversizedFrame { bytes, seqs } => {
            let Ok(mut s) = connect(addr) else {
                return EventResolution::Hang;
            };
            let mut junk = vec![b'x'; *bytes];
            junk.push(b'\n');
            if s.write_all(&junk).is_err() {
                return EventResolution::Closed;
            }
            if writeln!(s, "{}", plan_line(seqs, None)).is_err() {
                return EventResolution::Closed;
            }
            // Two responses: the oversized notice, then the served plan —
            // the second is the resolution (it proves resynchronization).
            let mut reader = BufReader::new(s);
            let mut first = String::new();
            match reader.read_line(&mut first) {
                Ok(0) => return EventResolution::Closed,
                Ok(_) => {
                    if classify_line(first.trim())
                        != EventResolution::TypedError(ErrorCode::FrameOversized)
                    {
                        return EventResolution::Hang;
                    }
                }
                Err(_) => return EventResolution::Hang,
            }
            let mut second = String::new();
            match reader.read_line(&mut second) {
                Ok(0) => EventResolution::Closed,
                Ok(_) => classify_line(second.trim()),
                Err(_) => EventResolution::Hang,
            }
        }
        ServeFault::PlannerStall {
            deadline_ms, seqs, ..
        } => {
            let Ok(mut s) = connect(addr) else {
                return EventResolution::Hang;
            };
            if writeln!(s, "{}", plan_line(seqs, Some(*deadline_ms))).is_err() {
                return EventResolution::Closed;
            }
            read_resolution(s)
        }
        ServeFault::PlannerPanic { seqs } => {
            let Ok(mut s) = connect(addr) else {
                return EventResolution::Hang;
            };
            if writeln!(s, "{}", plan_line(seqs, None)).is_err() {
                return EventResolution::Closed;
            }
            read_resolution(s)
        }
    }
}

/// Whether a resolution satisfies the typed-response invariant for `ev`.
fn acceptable(ev: &ServeFault, res: &EventResolution) -> bool {
    match (ev, res) {
        (_, EventResolution::Hang) => false,
        // Clean traffic must be served (primary or degraded); a typed
        // overload/shutdown verdict is still typed, but a close is not an
        // answer to a well-formed request.
        (ServeFault::CleanPlan { .. }, EventResolution::Ok { .. }) => true,
        (ServeFault::CleanPlan { .. }, EventResolution::TypedError(_)) => true,
        (ServeFault::CleanPlan { .. }, EventResolution::Closed) => false,
        // The dropper never reads; its own close is the expected outcome.
        (ServeFault::DropMidRequest { .. }, _) => true,
        // A dribbler may get the typed slow-client verdict or find the
        // socket closed under it — both are bounded.
        (ServeFault::ByteDribble { .. }, EventResolution::TypedError(c)) => {
            *c == ErrorCode::SlowClient
        }
        (ServeFault::ByteDribble { .. }, EventResolution::Closed) => true,
        (ServeFault::ByteDribble { .. }, EventResolution::Ok { .. }) => false,
        (ServeFault::MalformedFrame { .. }, EventResolution::TypedError(c)) => {
            *c == ErrorCode::BadRequest
        }
        (ServeFault::MalformedFrame { .. }, _) => false,
        // run_event already verified the oversized notice; the resolution
        // is the follow-up request, which must be served.
        (ServeFault::OversizedFrame { .. }, EventResolution::Ok { .. }) => true,
        (ServeFault::OversizedFrame { .. }, _) => false,
        // A stalled planner must miss the deadline (typed) — or the fault
        // was bypassed and the request served degraded, or a prior fault
        // left the breaker open and this one also resolved typed.
        (ServeFault::PlannerStall { .. }, EventResolution::TypedError(c)) => matches!(
            c,
            ErrorCode::DeadlineExceeded | ErrorCode::WorkerPanicked | ErrorCode::PlanFailed
        ),
        (ServeFault::PlannerStall { .. }, EventResolution::Ok { degraded }) => *degraded,
        (ServeFault::PlannerStall { .. }, EventResolution::Closed) => false,
        (ServeFault::PlannerPanic { .. }, EventResolution::TypedError(c)) => {
            matches!(c, ErrorCode::WorkerPanicked | ErrorCode::PlanFailed)
        }
        (ServeFault::PlannerPanic { .. }, EventResolution::Ok { degraded }) => *degraded,
        (ServeFault::PlannerPanic { .. }, EventResolution::Closed) => false,
    }
}

/// Boots a chaos-tuned server on the loopback, runs every event in
/// `schedule` against it, probes worker liveness, checks recovery, shuts
/// the server down, and returns the full report.
///
/// # Errors
///
/// Returns the schedule's validation message (as `InvalidInput`) or a
/// socket error from binding/joining the server. Invariant *violations* are
/// not errors — they are recorded in the report for the caller to assert.
pub fn run_chaos(schedule: &ServeFaultSchedule) -> std::io::Result<ChaosReport> {
    schedule
        .validate()
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e))?;
    let chaos = Arc::new(PlannerChaos::new());
    let cfg = chaos_server_config(Arc::clone(&chaos));
    let workers_configured = cfg.workers;
    let breaker_cooldown = Duration::from_millis(cfg.breaker_cooldown_ms);
    let server = Server::bind(cfg)?;
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    let mut outcomes = Vec::with_capacity(schedule.events().len());
    let mut violations = Vec::new();
    for (index, ev) in schedule.events().iter().enumerate() {
        // Arm planner faults just before the event that expects them.
        match ev {
            ServeFault::PlannerStall { ms, .. } => chaos.push_stall(*ms),
            ServeFault::PlannerPanic { .. } => chaos.push_panic(),
            _ => {}
        }
        let t0 = Instant::now();
        let resolution = run_event(&addr, ev);
        let elapsed = t0.elapsed();
        // A bypassed planner (shed / breaker open) leaves its fault queued;
        // drain it so it cannot fire during a later event.
        let drained_faults = chaos.take_pending().len();
        if !acceptable(ev, &resolution) {
            violations.push(format!(
                "event {index} ({}) resolved {:?} — not an accepted typed outcome",
                ev.tag(),
                resolution
            ));
        }
        if elapsed > CHAOS_SLO {
            violations.push(format!(
                "event {index} ({}) took {}ms, over the {}ms SLO",
                ev.tag(),
                elapsed.as_millis(),
                CHAOS_SLO.as_millis()
            ));
        }
        outcomes.push(EventOutcome {
            index,
            event: ev.describe(),
            resolution,
            elapsed_ms: elapsed.as_millis().min(u64::MAX as u128) as u64,
            drained_faults,
        });
    }

    // Worker-liveness probe: one concurrent held connection per configured
    // worker, all answering a stats request. The probe's read timeout is
    // *shorter* than the server's idle timeout on purpose: a lone surviving
    // worker can only pick up the next held connection after idling out the
    // previous one, so hung workers surface as probe timeouts instead of
    // being masked by sequential service.
    let probe_timeout = Duration::from_millis(1_000);
    let mut probes = Vec::new();
    for _ in 0..workers_configured {
        match connect(&addr) {
            Ok(mut s) => {
                let _ = s.set_read_timeout(Some(probe_timeout));
                let ok = writeln!(s, "{}", Request::Stats.to_line()).is_ok();
                probes.push((s, ok));
            }
            Err(_) => violations.push("liveness probe failed to connect".to_string()),
        }
    }
    let mut workers_alive = 0;
    for (stream, wrote) in probes {
        if !wrote {
            continue;
        }
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n)
                if n > 0
                    && classify_line(line.trim()) == (EventResolution::Ok { degraded: false }) =>
            {
                workers_alive += 1;
            }
            _ => {}
        }
        // Connections drop here, freeing their workers one by one — the
        // probe counts how many answered while all were held open.
    }
    if workers_alive != workers_configured {
        violations.push(format!(
            "liveness probe: {workers_alive}/{workers_configured} workers answered"
        ));
    }

    // Recovery: give the breaker its cooldown, then a clean fresh-key
    // request must be served primary (not degraded) within the SLO.
    std::thread::sleep(breaker_cooldown + Duration::from_millis(50));
    let recovery_seqs: Vec<u64> = vec![
        9_001 + (schedule.seed % 97),
        4_099 + (schedule.seed % 31),
        513,
    ];
    let t0 = Instant::now();
    let recovery = match connect(&addr) {
        Ok(mut s) => {
            if writeln!(s, "{}", plan_line(&recovery_seqs, Some(4_000))).is_err() {
                EventResolution::Closed
            } else {
                read_resolution(s)
            }
        }
        Err(_) => EventResolution::Hang,
    };
    let recovery_ms = t0.elapsed().as_millis().min(u64::MAX as u128) as u64;
    let (recovered_ok, recovered_degraded) = match recovery {
        EventResolution::Ok { degraded } => (true, degraded),
        other => {
            violations.push(format!("post-chaos clean request resolved {other:?}"));
            (false, false)
        }
    };

    // Graceful stop: shutdown request, then join the server.
    if let Ok(mut s) = connect(&addr) {
        let _ = writeln!(s, "{}", Request::Shutdown.to_line());
        let mut reader = BufReader::new(s);
        let mut ack = String::new();
        let _ = reader.read_line(&mut ack);
    }
    let server = server_thread
        .join()
        .map_err(|_| std::io::Error::other("server thread panicked"))??;
    if server.metrics.worker_respawns > 0 {
        // Respawns mean a panic escaped request containment — the backstop
        // held, but the containment invariant did not.
        violations.push(format!(
            "{} worker respawn(s): a panic escaped request containment",
            server.metrics.worker_respawns
        ));
    }

    Ok(ChaosReport {
        seed: schedule.seed,
        outcomes,
        violations,
        recovered_ok,
        recovered_degraded,
        recovery_ms,
        workers_alive,
        workers_configured,
        server,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schedules_are_deterministic_and_valid() {
        for seed in [3, 17, 4242] {
            let a = ServeFaultSchedule::random(seed, 12);
            let b = ServeFaultSchedule::random(seed, 12);
            assert_eq!(a, b, "seed {seed} diverged");
            assert_eq!(a.event_log(), b.event_log());
            a.validate().expect("random schedule validates");
            assert_eq!(a.events().len(), 12);
        }
        assert_ne!(
            ServeFaultSchedule::random(1, 12),
            ServeFaultSchedule::random(2, 12)
        );
    }

    #[test]
    fn random_schedules_mix_clean_traffic() {
        let s = ServeFaultSchedule::random(7, 30);
        let clean = s
            .events()
            .iter()
            .filter(|e| matches!(e, ServeFault::CleanPlan { .. }))
            .count();
        assert!(clean >= 10, "every third event is clean, got {clean}");
    }

    #[test]
    fn validation_rejects_out_of_bounds_events() {
        assert!(ServeFaultSchedule::new().validate().is_err(), "empty");
        let cases = [
            ServeFaultSchedule::new().clean_plan(vec![]),
            ServeFaultSchedule::new().clean_plan(vec![0]),
            ServeFaultSchedule::new().clean_plan(vec![limits::MAX_SEQ_LEN + 1]),
            ServeFaultSchedule::new().drop_mid_request(0),
            ServeFaultSchedule::new().drop_mid_request(limits::MAX_DROP_BYTES + 1),
            ServeFaultSchedule::new().byte_dribble(vec![100], 0),
            ServeFaultSchedule::new().byte_dribble(vec![100], limits::MAX_GAP_MS + 1),
            ServeFaultSchedule::new().malformed_frame(""),
            ServeFaultSchedule::new().malformed_frame("two\nlines"),
            ServeFaultSchedule::new().oversized_frame(MAX_FRAME_BYTES, vec![100]),
            ServeFaultSchedule::new().planner_stall(0, 1, vec![100]),
            ServeFaultSchedule::new().planner_stall(100, 100, vec![100]),
            ServeFaultSchedule::new().planner_stall(limits::MAX_STALL_MS + 1, 10, vec![100]),
            ServeFaultSchedule::new().planner_panic(vec![]),
        ];
        for (i, s) in cases.iter().enumerate() {
            assert!(s.validate().is_err(), "case {i} should fail: {s:?}");
        }
        let good = ServeFaultSchedule::new()
            .clean_plan(vec![100, 200])
            .drop_mid_request(10)
            .byte_dribble(vec![100], 30)
            .malformed_frame("{\"op\":\"fly\"}")
            .oversized_frame(MAX_FRAME_BYTES + 1, vec![100])
            .planner_stall(200, 50, vec![100])
            .planner_panic(vec![100]);
        good.validate().expect("hand-built schedule validates");
        assert_eq!(good.events().len(), 7);
    }

    #[test]
    fn planner_chaos_queue_is_fifo_and_drainable() {
        let c = PlannerChaos::new();
        c.push_stall(1);
        c.push_panic();
        assert_eq!(c.pending(), 2);
        // Consumes the 1ms stall.
        c.before_plan();
        assert_eq!(c.pending(), 1);
        let left = c.take_pending();
        assert_eq!(left, vec![PlannerFault::Panic]);
        assert_eq!(c.pending(), 0);
        // Empty queue: before_plan is a no-op.
        c.before_plan();
    }

    #[test]
    fn injected_panic_is_catchable() {
        let c = PlannerChaos::new();
        c.push_panic();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.before_plan()));
        assert!(caught.is_err(), "panic fault must panic");
        assert_eq!(c.pending(), 0, "the fault was consumed");
    }

    #[test]
    fn run_chaos_rejects_invalid_schedules() {
        let err = run_chaos(&ServeFaultSchedule::new()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
    }
}

//! The pipelined planner: plan step N+1 on a worker thread while the
//! executor simulates step N, hiding planner latency off the critical path
//! (the paper's asynchronous-planning deployment, §2/§5).
//!
//! The report splits total planning wall-time into *hidden* (overlapped
//! with simulation of the previous step) and *exposed* (time the trainer
//! actually blocked waiting for a plan). With a warm pipeline, exposure is
//! ≈ 0 whenever planning a batch is faster than executing one — the paper's
//! zero-critical-path-cost claim, now measured instead of assumed.

use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_core::plan::{IterationPlan, PlanError};
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_data::batch::{sample_batch, Batch};
use zeppelin_data::distribution::LengthDistribution;
use zeppelin_exec::step::{simulate_plan, StepError};
use zeppelin_exec::trainer::{RunConfig, RunError, RunReport, StepSummary};
use zeppelin_sim::time::SimDuration;

use crate::cache::{CacheStats, PlanCache};

/// Configuration of a pipelined run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The underlying run (steps, tokens, seed — identical semantics to
    /// [`zeppelin_exec::trainer::run_training`]).
    pub run: RunConfig,
    /// Route planning through a canonicalizing [`PlanCache`] so repeated
    /// batch shapes skip the partitioner entirely.
    pub use_cache: bool,
    /// Cache capacity when `use_cache` is set.
    pub cache_capacity: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            run: RunConfig::default(),
            use_cache: true,
            cache_capacity: 256,
        }
    }
}

/// A [`RunReport`] extended with planner-overlap accounting.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The training-run aggregate (identical numbers to the sequential
    /// trainer — pipelining changes wall-clock, not simulated results).
    pub run: RunReport,
    /// Total wall-clock the worker spent planning.
    pub plan_total: Duration,
    /// Planning time overlapped with simulation of the previous step.
    pub plan_hidden: Duration,
    /// Planning time the trainer blocked on (critical-path cost).
    pub plan_exposed: Duration,
    /// Wall-clock the trainer spent simulating steps.
    pub sim_wall: Duration,
    /// Cache counters (zeros when the cache was disabled).
    pub cache: CacheStats,
}

impl PipelineReport {
    /// Fraction of planning time hidden off the critical path (1.0 when
    /// nothing was exposed; 0-planning runs count as fully hidden).
    pub fn hidden_fraction(&self) -> f64 {
        if self.plan_total.is_zero() {
            return 1.0;
        }
        self.plan_hidden.as_secs_f64() / self.plan_total.as_secs_f64()
    }
}

struct PlannedStep {
    step: usize,
    result: Result<(Arc<IterationPlan>, bool), PlanError>,
    elapsed: Duration,
}

/// Runs `cfg.run.steps` training steps with planning double-buffered on a
/// worker thread: while step `i` simulates, step `i+1`'s batch is already
/// being planned. Batches are sampled exactly as in
/// [`run_training`](zeppelin_exec::trainer::run_training), so reports match
/// the sequential trainer step for step.
///
/// # Errors
///
/// Same surface as the sequential trainer: [`RunError::NoSteps`],
/// [`RunError::EmptyBatch`], and per-step plan/sim failures as
/// [`RunError::Step`].
pub fn run_training_pipelined<S: Scheduler + Sync>(
    scheduler: &S,
    dist: &LengthDistribution,
    ctx: &SchedulerCtx,
    cfg: &PipelineConfig,
) -> Result<PipelineReport, RunError> {
    if cfg.run.steps == 0 {
        return Err(RunError::NoSteps);
    }
    // Identical sampling discipline to the sequential trainer: one RNG
    // seeded with cfg.run.seed, batches drawn in step order.
    let mut rng = StdRng::seed_from_u64(cfg.run.seed);
    let mut batches = Vec::with_capacity(cfg.run.steps);
    for i in 0..cfg.run.steps {
        let batch = sample_batch(dist, &mut rng, cfg.run.tokens_per_step);
        if batch.total_tokens() == 0 {
            return Err(RunError::EmptyBatch { step: i });
        }
        batches.push(batch);
    }

    let mut cache = cfg.use_cache.then(|| PlanCache::new(cfg.cache_capacity));

    std::thread::scope(|scope| -> Result<PipelineReport, RunError> {
        // Channels live inside the scope: an early error return drops
        // `batch_tx`, the worker's recv() fails, it exits, and the scope
        // join completes — no deadlock on the error path.
        let (batch_tx, batch_rx) = mpsc::channel::<(usize, Batch)>();
        let (plan_tx, plan_rx) = mpsc::channel::<PlannedStep>();
        let cache_ref = &mut cache;
        scope.spawn(move || {
            while let Ok((step, batch)) = batch_rx.recv() {
                let start = Instant::now();
                let result = match cache_ref.as_mut() {
                    Some(cache) => cache.get_or_plan(scheduler, &batch, ctx),
                    None => scheduler.plan(&batch, ctx).map(|p| (Arc::new(p), false)),
                };
                let send = plan_tx.send(PlannedStep {
                    step,
                    result,
                    elapsed: start.elapsed(),
                });
                if send.is_err() {
                    return; // trainer bailed on an error
                }
            }
        });

        batch_tx
            .send((0, batches[0].clone()))
            .expect("planner worker alive");

        let mut steps = Vec::with_capacity(cfg.run.steps);
        let mut sum_tp = 0.0;
        let mut min_tp = f64::INFINITY;
        let mut max_tp = 0.0f64;
        let mut sum_ns: u128 = 0;
        let mut name = String::new();
        let mut plan_total = Duration::ZERO;
        let mut plan_exposed = Duration::ZERO;
        let mut sim_wall = Duration::ZERO;

        for i in 0..cfg.run.steps {
            let wait_start = Instant::now();
            let planned = plan_rx.recv().expect("planner worker alive");
            let wait = wait_start.elapsed();
            debug_assert_eq!(planned.step, i, "plans arrive in step order");
            let plan = planned
                .result
                .map_err(|e| RunError::Step {
                    step: i,
                    source: StepError::Plan(e),
                })?
                .0;
            plan_total += planned.elapsed;
            // Time blocked on recv() is the planner's critical-path cost for
            // this step; the rest of planned.elapsed ran under step i-1's
            // simulation. Step 0 has nothing to hide behind by definition.
            plan_exposed += wait.min(planned.elapsed);

            if i + 1 < cfg.run.steps {
                batch_tx
                    .send((i + 1, batches[i + 1].clone()))
                    .expect("planner worker alive");
            }

            let mut scfg = cfg.run.step.clone();
            scfg.seed = cfg.run.seed.wrapping_add(i as u64);
            let sim_start = Instant::now();
            let report = simulate_plan(&plan, &batches[i], ctx, &scfg)
                .map_err(|source| RunError::Step { step: i, source })?;
            sim_wall += sim_start.elapsed();

            sum_tp += report.throughput;
            min_tp = min_tp.min(report.throughput);
            max_tp = max_tp.max(report.throughput);
            sum_ns += report.step_time.as_nanos() as u128;
            name = report.scheduler.clone();
            steps.push(StepSummary::from(&report));
        }
        drop(batch_tx); // worker drains and exits; scope joins it

        let run = RunReport {
            scheduler: name,
            mean_throughput: sum_tp / cfg.run.steps as f64,
            min_throughput: min_tp,
            max_throughput: max_tp,
            mean_step_time: SimDuration::from_nanos((sum_ns / cfg.run.steps as u128) as u64),
            steps,
        };
        Ok(PipelineReport {
            run,
            plan_total,
            plan_hidden: plan_total.saturating_sub(plan_exposed),
            plan_exposed,
            sim_wall,
            cache: CacheStats::default(), // patched below once the scope ends
        })
    })
    .map(|mut report| {
        if let Some(cache) = &cache {
            report.cache = cache.stats();
        }
        report
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_core::zeppelin::Zeppelin;
    use zeppelin_data::datasets::arxiv;
    use zeppelin_exec::trainer::run_training;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192)
    }

    fn cfg(steps: usize) -> PipelineConfig {
        PipelineConfig {
            run: RunConfig {
                steps,
                tokens_per_step: 32_768,
                seed: 11,
                ..RunConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipelined_results_match_the_sequential_trainer() {
        let seq = run_training(&Zeppelin::new(), &arxiv(), &ctx(), &cfg(4).run).unwrap();
        let pipe = run_training_pipelined(&Zeppelin::new(), &arxiv(), &ctx(), &cfg(4)).unwrap();
        assert_eq!(pipe.run.mean_step_time, seq.mean_step_time);
        assert_eq!(pipe.run.steps.len(), seq.steps.len());
        assert_eq!(pipe.run.scheduler, seq.scheduler);
        assert!((pipe.run.mean_throughput - seq.mean_throughput).abs() < 1e-9);
    }

    #[test]
    fn planning_overlap_is_accounted() {
        let pipe = run_training_pipelined(&Zeppelin::new(), &arxiv(), &ctx(), &cfg(6)).unwrap();
        assert!(pipe.plan_total >= pipe.plan_exposed);
        assert_eq!(pipe.plan_total, pipe.plan_hidden + pipe.plan_exposed);
        let f = pipe.hidden_fraction();
        assert!((0.0..=1.0).contains(&f), "{f}");
        // 6 steps drew 6 plans through the cache.
        assert_eq!(pipe.cache.hits + pipe.cache.misses, 6);
    }

    #[test]
    fn cache_can_be_disabled() {
        let mut c = cfg(3);
        c.use_cache = false;
        let pipe = run_training_pipelined(&Zeppelin::new(), &arxiv(), &ctx(), &c).unwrap();
        assert_eq!(pipe.cache, CacheStats::default());
    }

    #[test]
    fn zero_steps_is_a_typed_error() {
        let err = run_training_pipelined(&Zeppelin::new(), &arxiv(), &ctx(), &cfg(0)).unwrap_err();
        assert!(matches!(err, RunError::NoSteps));
    }
}

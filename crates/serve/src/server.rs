//! The TCP front-end: a bounded worker pool serving line-delimited JSON
//! plan requests out of the shared canonicalizing cache, with the fault
//! discipline of a service that sits on a training hot path.
//!
//! Architecture: one non-blocking acceptor loop plus `workers` handler
//! threads draining a bounded connection queue (Mutex + Condvar). When the
//! queue is full the acceptor answers a typed `overloaded` error and closes
//! the connection instead of queuing unbounded work.
//!
//! Fault discipline, per request:
//!
//! - **Deadlines**: a `deadline_ms` budget propagates from the request line
//!   through planning to the response write; an expired budget is answered
//!   with a typed `deadline_exceeded` error instead of a stale plan.
//! - **Bounded framing**: [`FrameReader`] owns partial frames across read
//!   timeouts, sheds byte-dribbling clients (`slow_client`) after
//!   [`ServerConfig::frame_timeout_ms`], closes half-open idle connections
//!   after [`ServerConfig::idle_timeout_ms`], and resynchronizes after
//!   oversized lines (`frame_oversized`) — no client behavior can pin a
//!   worker.
//! - **Panic containment**: every request runs under `catch_unwind`; a
//!   panic is answered with a typed `worker_panicked` error and the worker
//!   survives. An escaped panic (outside the request path) re-enters the
//!   worker loop, so pool capacity never decays.
//! - **Admission control + degraded mode**: cache misses pass a
//!   load-shedding [`AdmissionGate`] over estimated in-flight planner time
//!   and a [`CircuitBreaker`] over consecutive planner failures; shed or
//!   short-circuited misses are answered by the fast fallback scheduler
//!   (`degraded: true`) instead of queueing behind a sick planner.
//! - **Graceful drain**: `shutdown` starts a bounded grace period during
//!   which queued and in-flight requests are served normally; stragglers
//!   past the grace get a typed `shutting_down` error, never a silently
//!   dropped connection.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use zeppelin_core::plan::IterationPlan;
use zeppelin_core::plan_io::plan_from_json;
use zeppelin_core::scheduler::SchedulerCtx;
use zeppelin_core::validate::{report, validate, validate_with_batch};
use zeppelin_data::batch::Batch;

use crate::admission::{AdmissionGate, CircuitBreaker};
use crate::cache::{CacheStats, CachedPlan, PlanCache, PlanKey};
use crate::chaos::PlannerChaos;
use crate::frame::{Frame, FrameError, FrameReader, MAX_FRAME_BYTES};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::protocol::{
    error_response, parse_request, plan_response, shutdown_response, stats_response, typed_error,
    ErrorCode, Request,
};
use crate::registry;

/// Upper bound on one request line, in bytes (alias of
/// [`MAX_FRAME_BYTES`], kept for callers of the original constant).
pub const MAX_LINE_BYTES: u64 = MAX_FRAME_BYTES as u64;

/// Socket read poll tick: how often blocked reads wake to check shutdown,
/// idle, and frame budgets.
const READ_TICK: Duration = Duration::from_millis(50);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Handler threads.
    pub workers: usize,
    /// Connections allowed to wait for a worker before rejection.
    pub max_queue: usize,
    /// Plan-cache capacity (entries).
    pub cache_capacity: usize,
    /// Default scheduler for requests without `method`.
    pub method: String,
    /// Default model preset.
    pub model: String,
    /// Default cluster preset.
    pub cluster: String,
    /// Default node count.
    pub nodes: usize,
    /// Fallback scheduler answering shed/short-circuited misses
    /// (`degraded: true`). Must resolve in the registry.
    pub degraded_method: String,
    /// Grace period after `shutdown` during which queued and in-flight
    /// requests are still served; later arrivals get `shutting_down`.
    pub grace_ms: u64,
    /// Idle keep-alive connections are closed after this long without a
    /// complete request (half-open client guard).
    pub idle_timeout_ms: u64,
    /// One frame may dribble at most this long before the connection is
    /// shed with `slow_client` (slow-loris guard).
    pub frame_timeout_ms: u64,
    /// Socket write timeout: a client that stops reading its responses
    /// cannot pin a worker in `write`.
    pub write_timeout_ms: u64,
    /// Admission gate high-water mark: estimated in-flight planner
    /// milliseconds beyond which cache misses are shed to degraded mode.
    pub planner_highwater_ms: u64,
    /// Seed for the gate's planner-latency estimate before observations.
    pub planner_estimate_ms: u64,
    /// Consecutive planner failures (errors or contained panics) that trip
    /// the circuit breaker open.
    pub breaker_failures: u32,
    /// How long the breaker stays open before half-opening one trial run.
    pub breaker_cooldown_ms: u64,
    /// Deterministic planner fault injection (stalls/panics) for the chaos
    /// harness; `None` in production.
    pub chaos: Option<Arc<PlannerChaos>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7077".to_string(),
            workers: 4,
            max_queue: 64,
            cache_capacity: 1024,
            method: "zeppelin".to_string(),
            model: "3b".to_string(),
            cluster: "a".to_string(),
            nodes: 2,
            degraded_method: "te".to_string(),
            grace_ms: 500,
            idle_timeout_ms: 30_000,
            frame_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            planner_highwater_ms: 2_000,
            planner_estimate_ms: 20,
            breaker_failures: 3,
            breaker_cooldown_ms: 250,
            chaos: None,
        }
    }
}

/// Everything [`Server::run`] hands back after a graceful shutdown.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Final service metrics.
    pub metrics: MetricsSnapshot,
    /// Final cache counters.
    pub cache: CacheStats,
    /// Plans held in the cache at shutdown.
    pub cached_plans: usize,
}

struct Shared {
    cfg: ServerConfig,
    shutdown: AtomicBool,
    /// Set when shutdown begins: the end of the drain grace period.
    drain_until: Mutex<Option<Instant>>,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    metrics: ServiceMetrics,
    cache: Mutex<PlanCache>,
    gate: AdmissionGate,
    breaker: CircuitBreaker,
}

impl Shared {
    fn begin_drain(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut until = self.drain_until.lock().expect("drain poisoned");
        if until.is_none() {
            *until = Some(Instant::now() + Duration::from_millis(self.cfg.grace_ms));
        }
        drop(until);
        self.available.notify_all();
    }

    /// True once the drain grace period has elapsed (always false before
    /// shutdown).
    fn past_grace(&self) -> bool {
        if !self.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        self.drain_until
            .lock()
            .expect("drain poisoned")
            .is_none_or(|t| Instant::now() > t)
    }
}

/// A bound planning server, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener (non-blocking accept loop).
    ///
    /// # Errors
    ///
    /// Propagates socket errors (address in use, permission...).
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let cache = Mutex::new(PlanCache::new(cfg.cache_capacity));
        let gate = AdmissionGate::new(cfg.planner_highwater_ms, cfg.planner_estimate_ms);
        let breaker = CircuitBreaker::new(
            cfg.breaker_failures,
            Duration::from_millis(cfg.breaker_cooldown_ms),
        );
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(Shared {
                cfg,
                shutdown: AtomicBool::new(false),
                drain_until: Mutex::new(None),
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                metrics: ServiceMetrics::new(),
                cache,
                gate,
                breaker,
            }),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `shutdown` request arrives, then drains the workers
    /// and reports final metrics.
    ///
    /// # Errors
    ///
    /// Propagates unexpected accept errors (transient `WouldBlock` /
    /// `Interrupted` are retried).
    pub fn run(self) -> std::io::Result<ServerReport> {
        let shared = Arc::clone(&self.shared);
        // The scope joins every worker before returning, so in-flight
        // connections finish and the final snapshot below sees them.
        std::thread::scope(|scope| -> std::io::Result<()> {
            for _ in 0..shared.cfg.workers.max(1) {
                let shared = Arc::clone(&shared);
                // Respawn backstop: a panic that escapes the per-request
                // containment must not shrink the pool, so the worker
                // re-enters its loop instead of unwinding out of the scope.
                scope.spawn(move || loop {
                    match catch_unwind(AssertUnwindSafe(|| worker_loop(&shared))) {
                        Ok(()) => break,
                        Err(_) => shared.metrics.record_worker_respawn(),
                    }
                });
            }
            while !shared.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => enqueue(&shared, stream),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        shared.begin_drain();
                        return Err(e);
                    }
                }
            }
            // Wake any workers parked on the empty queue so they can exit.
            shared.available.notify_all();
            Ok(())
        })?;
        let cache = self.shared.cache.lock().expect("cache poisoned");
        Ok(ServerReport {
            metrics: self.shared.metrics.snapshot(),
            cache: cache.stats(),
            cached_plans: cache.len(),
        })
    }
}

fn enqueue(shared: &Shared, stream: TcpStream) {
    let mut queue = shared.queue.lock().expect("queue poisoned");
    if queue.len() >= shared.cfg.max_queue {
        drop(queue);
        shared.metrics.record_rejected();
        // Best-effort rejection notice; the client may already be gone.
        let mut stream = stream;
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_write_timeout(Some(Duration::from_millis(
            shared.cfg.write_timeout_ms.max(1),
        )));
        let _ = writeln!(
            stream,
            "{}",
            typed_error(ErrorCode::Overloaded, "overloaded: queue full")
        );
        return;
    }
    queue.push_back(stream);
    shared.metrics.set_queue_depth(queue.len());
    drop(queue);
    shared.available.notify_one();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    shared.metrics.set_queue_depth(queue.len());
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("queue poisoned");
                queue = guard;
            }
        };
        let Some(stream) = stream else { return };
        handle_connection(shared, stream);
    }
}

/// How a handled request line terminates the write side.
enum RequestOutcome {
    /// Write the response and keep the connection open.
    Reply(String),
    /// Write the response, then close (shutdown ack).
    ReplyThenClose(String),
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    // Short read tick: blocked reads wake often enough to poll shutdown,
    // idle, and frame budgets without busy-waiting.
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        shared.cfg.write_timeout_ms.max(1),
    )));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = FrameReader::new(stream);
    let frame_timeout = Duration::from_millis(shared.cfg.frame_timeout_ms.max(1));
    let idle_timeout = Duration::from_millis(shared.cfg.idle_timeout_ms.max(1));
    let mut idle_since = Instant::now();
    loop {
        match reader.read_frame(Some(frame_timeout)) {
            Ok(Frame::Line(line)) => {
                idle_since = Instant::now();
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let arrival = Instant::now();
                if shared.past_grace() {
                    // Drain straggler: a typed goodbye, not a dropped
                    // connection.
                    shared.metrics.record_shutting_down();
                    let _ = writeln!(
                        writer,
                        "{}",
                        typed_error(
                            ErrorCode::ShuttingDown,
                            "server is draining and the grace period has passed"
                        )
                    );
                    return;
                }
                // Panic containment: whatever the handler does, the worker
                // answers typed and survives.
                match catch_unwind(AssertUnwindSafe(|| handle_request(shared, line, arrival))) {
                    Ok(RequestOutcome::Reply(response)) => {
                        if writeln!(writer, "{response}").is_err() {
                            return;
                        }
                    }
                    Ok(RequestOutcome::ReplyThenClose(response)) => {
                        let _ = writeln!(writer, "{response}");
                        return;
                    }
                    Err(_) => {
                        shared.metrics.record_worker_panic();
                        shared.metrics.record_error();
                        let _ = writeln!(
                            writer,
                            "{}",
                            typed_error(
                                ErrorCode::WorkerPanicked,
                                "the worker panicked serving this request; \
                                 the panic was contained and the pool is intact"
                            )
                        );
                        return;
                    }
                }
            }
            Ok(Frame::Eof) => return,
            Err(FrameError::TimedOut { mid_frame }) => {
                if shared.shutdown.load(Ordering::SeqCst) && shared.past_grace() {
                    return;
                }
                if !mid_frame && idle_since.elapsed() > idle_timeout {
                    // Half-open / silent client: free the worker.
                    return;
                }
                // Mid-frame waits are bounded by the reader's frame budget.
            }
            Err(FrameError::SlowFrame { partial }) => {
                shared.metrics.record_slow_client();
                let _ = writeln!(
                    writer,
                    "{}",
                    typed_error(
                        ErrorCode::SlowClient,
                        &format!(
                            "request frame stalled after {partial} byte(s); \
                             send complete lines within the frame budget"
                        )
                    )
                );
                return;
            }
            Err(FrameError::Oversized { discarded }) => {
                shared.metrics.record_error();
                let notice = typed_error(
                    ErrorCode::FrameOversized,
                    &format!(
                        "request line exceeds the {MAX_LINE_BYTES}-byte limit \
                         ({discarded} bytes discarded); resynchronized at the next line"
                    ),
                );
                if writeln!(writer, "{notice}").is_err() {
                    return;
                }
                // Resynchronized: the connection keeps serving.
            }
            // Peer vanished mid-frame: nobody left to answer.
            Err(FrameError::Truncated { .. }) | Err(FrameError::Io(_)) => return,
        }
    }
}

fn handle_request(shared: &Shared, line: &str, arrival: Instant) -> RequestOutcome {
    match parse_request(line) {
        Ok(Request::Stats) => {
            shared.metrics.record_stats();
            RequestOutcome::Reply(stats_response(&shared.metrics.snapshot()))
        }
        Ok(Request::Shutdown) => {
            shared.begin_drain();
            RequestOutcome::ReplyThenClose(shutdown_response())
        }
        Ok(Request::Plan {
            seqs,
            method,
            model,
            cluster,
            nodes,
            deadline_ms,
        }) => {
            let deadline = deadline_ms.map(|ms| arrival + Duration::from_millis(ms));
            match serve_plan(shared, &seqs, method, model, cluster, nodes, deadline) {
                Ok(r) => RequestOutcome::Reply(r),
                Err((code, msg)) => {
                    if code == ErrorCode::DeadlineExceeded {
                        shared.metrics.record_deadline_exceeded();
                    } else {
                        shared.metrics.record_error();
                    }
                    RequestOutcome::Reply(typed_error(code, &msg))
                }
            }
        }
        Ok(Request::Audit { plan }) => match audit_plan(shared, &plan) {
            Ok(r) => RequestOutcome::Reply(r),
            Err((code, msg)) => {
                shared.metrics.record_error();
                RequestOutcome::Reply(typed_error(code, &msg))
            }
        },
        Err(msg) => {
            shared.metrics.record_error();
            RequestOutcome::Reply(error_response(&msg))
        }
    }
}

/// Fails with `deadline_exceeded` once `deadline` has passed.
fn check_deadline(deadline: Option<Instant>, stage: &str) -> Result<(), (ErrorCode, String)> {
    match deadline {
        Some(d) if Instant::now() >= d => Err((
            ErrorCode::DeadlineExceeded,
            format!("deadline expired {stage}"),
        )),
        _ => Ok(()),
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_plan(
    shared: &Shared,
    seqs: &[u64],
    method: Option<String>,
    model: Option<String>,
    cluster: Option<String>,
    nodes: Option<usize>,
    deadline: Option<Instant>,
) -> Result<String, (ErrorCode, String)> {
    let cfg = &shared.cfg;
    let bad = |msg: String| (ErrorCode::BadRequest, msg);
    let scheduler = registry::scheduler_by_name(method.as_deref().unwrap_or(&cfg.method))
        .map_err(|n| bad(format!("unknown method '{n}'")))?;
    let model = registry::model_by_name(model.as_deref().unwrap_or(&cfg.model))
        .map_err(|n| bad(format!("unknown model '{n}'")))?;
    let cluster = registry::cluster_by_name(
        cluster.as_deref().unwrap_or(&cfg.cluster),
        nodes.unwrap_or(cfg.nodes),
    )
    .map_err(|n| bad(format!("unknown cluster '{n}'")))?;
    let ctx = SchedulerCtx::new(&cluster, &model);
    let batch = Batch::new(seqs.to_vec());

    let start = Instant::now();
    // A request that expired while queued is answered typed, before any
    // planner time is spent on it.
    check_deadline(deadline, "while queued, before planning")?;
    let (key, canonical) = PlanKey::new(scheduler.name(), &batch, &ctx);
    let looked_up = shared.cache.lock().expect("cache poisoned").lookup(&key);
    let (plan, hit, degraded) = match looked_up {
        Some(cached) => (cached.materialize(&canonical), true, false),
        None => {
            // Admission: the gate bounds estimated in-flight planner time,
            // the breaker short-circuits a failing planner. Either verdict
            // degrades to the fallback scheduler instead of queueing.
            match shared.gate.try_admit() {
                None => {
                    shared.metrics.record_shed();
                    let plan = degraded_plan(shared, &batch, &ctx)?;
                    (plan, false, true)
                }
                Some(permit) => {
                    if !shared.breaker.allow() {
                        shared.gate.cancel(permit);
                        let plan = degraded_plan(shared, &batch, &ctx)?;
                        (plan, false, true)
                    } else {
                        // Plan outside the cache lock: a slow partition must
                        // not stall cache hits on other workers. Concurrent
                        // misses for one key plan twice and the last insert
                        // wins — both compute the same canonical plan.
                        let t0 = Instant::now();
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            if let Some(chaos) = &cfg.chaos {
                                chaos.before_plan();
                            }
                            scheduler.plan(&canonical.to_batch(), &ctx)
                        }));
                        shared.gate.release(permit, t0.elapsed());
                        match outcome {
                            Ok(Ok(plan)) => {
                                shared.breaker.record_success();
                                let cached = Arc::new(CachedPlan::new(plan, &canonical.lens));
                                let materialized = cached.materialize(&canonical);
                                shared
                                    .cache
                                    .lock()
                                    .expect("cache poisoned")
                                    .insert(key, cached);
                                (materialized, false, false)
                            }
                            Ok(Err(e)) => {
                                if shared.breaker.record_failure() {
                                    shared.metrics.record_breaker_trip();
                                }
                                return Err((
                                    ErrorCode::PlanFailed,
                                    format!("planning failed: {e}"),
                                ));
                            }
                            Err(_) => {
                                // Planner panic, contained at the request
                                // level: typed error out, worker intact,
                                // breaker counts the failure.
                                if shared.breaker.record_failure() {
                                    shared.metrics.record_breaker_trip();
                                }
                                shared.metrics.record_worker_panic();
                                return Err((
                                    ErrorCode::WorkerPanicked,
                                    "the planner panicked on this request; the panic was \
                                     contained and the worker pool is intact"
                                        .to_string(),
                                ));
                            }
                        }
                    }
                }
            }
        }
    };
    // Audit what actually goes on the wire — the materialized plan, after
    // any cache re-indexing, degraded or not — so a cache, permutation, or
    // fallback bug can never ship a corrupt plan to a trainer.
    validate_with_batch(&plan, &ctx, &batch).map_err(|v| {
        (
            ErrorCode::AuditFailed,
            format!("served plan failed audit: {}", report(&v)),
        )
    })?;
    // Deadline check after planning, before the response write: a stalled
    // planner yields a typed error, not a stale plan.
    check_deadline(deadline, "after planning, before the response write")?;
    let elapsed = start.elapsed();
    if degraded {
        shared.metrics.record_degraded();
    }
    shared.metrics.record_plan(elapsed, hit);
    Ok(plan_response(
        &plan,
        hit,
        degraded,
        elapsed.as_micros().min(u64::MAX as u128) as u64,
    ))
}

/// Plans `batch` with the fallback scheduler for a degraded response.
/// Degraded plans are *not* cached: the next uncongested miss should get
/// the primary planner's answer.
fn degraded_plan(
    shared: &Shared,
    batch: &Batch,
    ctx: &SchedulerCtx,
) -> Result<Arc<IterationPlan>, (ErrorCode, String)> {
    let fallback = registry::scheduler_by_name(&shared.cfg.degraded_method).map_err(|n| {
        (
            ErrorCode::PlanFailed,
            format!("degraded-mode fallback scheduler '{n}' is unknown"),
        )
    })?;
    match catch_unwind(AssertUnwindSafe(|| fallback.plan(batch, ctx))) {
        Ok(Ok(plan)) => Ok(Arc::new(plan)),
        Ok(Err(e)) => Err((
            ErrorCode::PlanFailed,
            format!("degraded-mode planning failed: {e}"),
        )),
        Err(_) => {
            shared.metrics.record_worker_panic();
            Err((
                ErrorCode::WorkerPanicked,
                "the fallback planner panicked; the panic was contained".to_string(),
            ))
        }
    }
}

/// Handles an `audit` request: parse the client's plan document and run
/// the full audit against the server's configured default context.
fn audit_plan(shared: &Shared, plan_text: &str) -> Result<String, (ErrorCode, String)> {
    let cfg = &shared.cfg;
    let plan = plan_from_json(plan_text).map_err(|e| (ErrorCode::BadRequest, e.to_string()))?;
    let model = registry::model_by_name(&cfg.model)
        .map_err(|n| (ErrorCode::BadRequest, format!("unknown model '{n}'")))?;
    let cluster = registry::cluster_by_name(&cfg.cluster, cfg.nodes)
        .map_err(|n| (ErrorCode::BadRequest, format!("unknown cluster '{n}'")))?;
    let ctx = SchedulerCtx::new(&cluster, &model);
    match validate(&plan, &ctx) {
        Ok(()) => Ok("{\"ok\":true,\"audited\":true,\"violations\":0}".to_string()),
        Err(v) => Err((
            ErrorCode::AuditFailed,
            format!(
                "plan failed audit ({} violation(s)): {}",
                v.len(),
                report(&v)
            ),
        )),
    }
}

//! The TCP front-end: a single-threaded readiness event loop feeding a
//! bounded planner-worker pool, serving line-delimited JSON plan requests
//! out of the sharded canonicalizing cache with single-flight coalescing —
//! and the fault discipline of a service that sits on a training hot path.
//!
//! Architecture: one event-loop thread owns every connection as a small
//! state machine (non-blocking accept, [`FrameReader`] framing, buffered
//! non-blocking writes) driven by the std-only readiness [`Poller`]. The
//! loop itself never plans: `plan` and `audit` requests become jobs on a
//! bounded queue drained by `workers` planner threads, whose responses come
//! back through a completion queue the loop flushes to each connection.
//! Cheap requests (`stats`, `shutdown`, parse errors) are answered inline.
//! A connection serves one request at a time, so responses stay in request
//! order.
//!
//! Contention discipline, per layer:
//!
//! - **Sharded cache**: the plan cache is a [`ShardedPlanCache`] — shard
//!   chosen by the high bits of the precomputed key digest, so concurrent
//!   workers on distinct keys never meet on one mutex.
//! - **Single-flight coalescing**: concurrent misses on one key join a
//!   [`FlightTable`] flight; one leader runs the planner (charged once to
//!   the admission gate) and fans the shared `Arc` plan out to every
//!   follower, each still bounded by its own deadline.
//! - **Sharded metrics**: each worker records into its own metrics shard;
//!   shards merge only when a `stats` snapshot is taken.
//!
//! Fault discipline, per request (unchanged from the chaos-hardened
//! blocking front-end — the seeded chaos harness runs against this loop):
//!
//! - **Deadlines**: a `deadline_ms` budget propagates from the request line
//!   through planning (and any coalesced wait) to the response write; an
//!   expired budget is answered with a typed `deadline_exceeded` error
//!   instead of a stale plan.
//! - **Bounded framing**: [`FrameReader`] owns partial frames across read
//!   ticks, sheds byte-dribbling clients (`slow_client`) after
//!   [`ServerConfig::frame_timeout_ms`], closes half-open idle connections
//!   after [`ServerConfig::idle_timeout_ms`], and resynchronizes after
//!   oversized lines (`frame_oversized`) — no client behavior can pin the
//!   loop or a worker.
//! - **Panic containment**: planner runs and whole jobs run under
//!   `catch_unwind`; a panic is answered with a typed `worker_panicked`
//!   error and the pool survives, with a worker-loop respawn backstop so
//!   capacity never decays.
//! - **Admission control + degraded mode**: cache misses pass a
//!   load-shedding [`AdmissionGate`] over estimated in-flight planner time
//!   and a [`CircuitBreaker`] over consecutive planner failures; shed or
//!   short-circuited misses are answered by the fast fallback scheduler
//!   (`degraded: true`) instead of queueing behind a sick planner.
//! - **Graceful drain**: `shutdown` starts a bounded grace period during
//!   which queued and in-flight requests are served normally; stragglers
//!   past the grace get a typed `shutting_down` error, never a silently
//!   dropped connection.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use zeppelin_core::plan_io::plan_from_json;
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_core::validate::{report, validate, validate_with_batch};
use zeppelin_data::batch::Batch;

use crate::admission::{AdmissionGate, CircuitBreaker};
use crate::cache::{CacheStats, CachedPlan, PlanKey, ShardedPlanCache};
use crate::canonical::CanonicalBatch;
use crate::chaos::PlannerChaos;
use crate::event::Poller;
use crate::frame::{Frame, FrameError, FrameReader, MAX_FRAME_BYTES};
use crate::metrics::{MetricsShard, MetricsSnapshot, ServiceMetrics};
use crate::protocol::{
    error_response, parse_request, plan_response, shutdown_response, stats_response, typed_error,
    ErrorCode, Request,
};
use crate::registry;
use crate::singleflight::{FlightOutcome, FlightTable, Join};

/// Upper bound on one request line, in bytes (alias of
/// [`MAX_FRAME_BYTES`], kept for callers of the original constant).
pub const MAX_LINE_BYTES: u64 = MAX_FRAME_BYTES as u64;

/// Readiness-poll budget for one idle event-loop pass: the upper bound on
/// how long the loop sleeps when no connection has pending work.
const LOOP_TICK: Duration = Duration::from_millis(1);

/// Fairness bound: at most this many frames are handled per connection per
/// event-loop pass, so one pipelining client cannot starve the rest.
const FRAMES_PER_TICK: usize = 64;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Planner worker threads (the event loop itself is one more thread).
    pub workers: usize,
    /// Plan/audit jobs allowed to wait for a worker before the request is
    /// rejected with a typed `overloaded` error.
    pub max_queue: usize,
    /// Plan-cache capacity (entries, split across the shards).
    pub cache_capacity: usize,
    /// Plan-cache shard count (keyed by the high bits of the key digest).
    pub cache_shards: usize,
    /// Concurrent connections accepted before new ones are rejected with a
    /// typed `overloaded` error.
    pub max_connections: usize,
    /// Default scheduler for requests without `method`.
    pub method: String,
    /// Default model preset.
    pub model: String,
    /// Default cluster preset.
    pub cluster: String,
    /// Default node count.
    pub nodes: usize,
    /// Fallback scheduler answering shed/short-circuited misses
    /// (`degraded: true`). Must resolve in the registry.
    pub degraded_method: String,
    /// Grace period after `shutdown` during which queued and in-flight
    /// requests are still served; later arrivals get `shutting_down`.
    pub grace_ms: u64,
    /// Idle keep-alive connections are closed after this long without a
    /// complete request (half-open client guard).
    pub idle_timeout_ms: u64,
    /// One frame may dribble at most this long before the connection is
    /// shed with `slow_client` (slow-loris guard).
    pub frame_timeout_ms: u64,
    /// A client that stops reading its responses is disconnected once its
    /// write buffer has made no progress for this long.
    pub write_timeout_ms: u64,
    /// Admission gate high-water mark: estimated in-flight planner
    /// milliseconds beyond which cache misses are shed to degraded mode.
    pub planner_highwater_ms: u64,
    /// Seed for the gate's planner-latency estimate before observations.
    pub planner_estimate_ms: u64,
    /// Consecutive planner failures (errors or contained panics) that trip
    /// the circuit breaker open.
    pub breaker_failures: u32,
    /// How long the breaker stays open before half-opening one trial run.
    pub breaker_cooldown_ms: u64,
    /// Deterministic planner fault injection (stalls/panics) for the chaos
    /// harness; `None` in production.
    pub chaos: Option<Arc<PlannerChaos>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7077".to_string(),
            workers: 4,
            max_queue: 64,
            cache_capacity: 1024,
            cache_shards: 8,
            max_connections: 1024,
            method: "zeppelin".to_string(),
            model: "3b".to_string(),
            cluster: "a".to_string(),
            nodes: 2,
            degraded_method: "te".to_string(),
            grace_ms: 500,
            idle_timeout_ms: 30_000,
            frame_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            planner_highwater_ms: 2_000,
            planner_estimate_ms: 20,
            breaker_failures: 3,
            breaker_cooldown_ms: 250,
            chaos: None,
        }
    }
}

/// Everything [`Server::run`] hands back after a graceful shutdown.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Final service metrics.
    pub metrics: MetricsSnapshot,
    /// Final cache counters (merged across shards).
    pub cache: CacheStats,
    /// Plans held in the cache at shutdown.
    pub cached_plans: usize,
}

/// A plan/audit job queued for a planner worker.
struct Job {
    conn: u64,
    request: JobRequest,
}

enum JobRequest {
    Plan {
        seqs: Vec<u64>,
        method: Option<String>,
        model: Option<String>,
        cluster: Option<String>,
        nodes: Option<usize>,
        deadline: Option<Instant>,
    },
    Audit {
        plan: String,
    },
}

/// A finished job's response, routed back to its connection.
struct Completion {
    conn: u64,
    response: String,
    close: bool,
}

struct JobQueue {
    queue: VecDeque<Job>,
    inflight: usize,
    closed: bool,
}

struct Shared {
    cfg: ServerConfig,
    shutdown: AtomicBool,
    /// Set when shutdown begins: the end of the drain grace period.
    drain_until: Mutex<Option<Instant>>,
    jobs: Mutex<JobQueue>,
    job_ready: Condvar,
    completions: Mutex<Vec<Completion>>,
    metrics: ServiceMetrics,
    cache: ShardedPlanCache,
    flights: FlightTable,
    gate: AdmissionGate,
    breaker: CircuitBreaker,
}

impl Shared {
    fn begin_drain(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut until = self.drain_until.lock().expect("drain poisoned");
        if until.is_none() {
            *until = Some(Instant::now() + Duration::from_millis(self.cfg.grace_ms));
        }
        drop(until);
        self.job_ready.notify_all();
    }

    /// True once the drain grace period has elapsed (always false before
    /// shutdown).
    fn past_grace(&self) -> bool {
        if !self.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        self.drain_until
            .lock()
            .expect("drain poisoned")
            .is_none_or(|t| Instant::now() > t)
    }

    /// Releases the workers once the event loop has fully drained.
    fn close_jobs(&self) {
        self.jobs.lock().expect("jobs poisoned").closed = true;
        self.job_ready.notify_all();
    }
}

/// A bound planning server, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener (non-blocking accept on the event loop).
    ///
    /// # Errors
    ///
    /// Propagates socket errors (address in use, permission...).
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let cache = ShardedPlanCache::new(cfg.cache_capacity, cfg.cache_shards);
        let gate = AdmissionGate::new(cfg.planner_highwater_ms, cfg.planner_estimate_ms);
        let breaker = CircuitBreaker::new(
            cfg.breaker_failures,
            Duration::from_millis(cfg.breaker_cooldown_ms),
        );
        // One metrics shard per worker plus one for the event loop.
        let metrics = ServiceMetrics::with_shards(cfg.workers.max(1) + 1);
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(Shared {
                cfg,
                shutdown: AtomicBool::new(false),
                drain_until: Mutex::new(None),
                jobs: Mutex::new(JobQueue {
                    queue: VecDeque::new(),
                    inflight: 0,
                    closed: false,
                }),
                job_ready: Condvar::new(),
                completions: Mutex::new(Vec::new()),
                metrics,
                cache,
                flights: FlightTable::new(),
                gate,
                breaker,
            }),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `shutdown` request arrives, then drains the workers
    /// and reports final metrics.
    ///
    /// # Errors
    ///
    /// Propagates unexpected accept errors (transient `WouldBlock` /
    /// `Interrupted` are retried).
    pub fn run(self) -> std::io::Result<ServerReport> {
        let shared = Arc::clone(&self.shared);
        // The scope joins every worker before returning, so in-flight jobs
        // finish and the final snapshot below sees them.
        std::thread::scope(|scope| -> std::io::Result<()> {
            for worker in 0..shared.cfg.workers.max(1) {
                let shared = Arc::clone(&shared);
                // Respawn backstop: a panic that escapes the per-job
                // containment must not shrink the pool, so the worker
                // re-enters its loop instead of unwinding out of the scope.
                scope.spawn(move || loop {
                    match catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, worker))) {
                        Ok(()) => break,
                        Err(_) => shared.metrics.record_worker_respawn(),
                    }
                });
            }
            let result = event_loop(&shared, &self.listener);
            // The loop only exits once the job queue is drained; closing it
            // lets the parked workers observe the end and return.
            shared.close_jobs();
            result
        })?;
        Ok(ServerReport {
            metrics: self.shared.metrics.snapshot(),
            cache: self.shared.cache.stats(),
            cached_plans: self.shared.cache.len(),
        })
    }
}

/// Per-connection state owned by the event loop.
struct Conn {
    /// The poller token: how completions find their way back here.
    token: u64,
    reader: FrameReader<TcpStream>,
    writer: TcpStream,
    /// Buffered response bytes not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// True while a plan/audit job for this connection is in flight — the
    /// loop stops reading it, so responses keep request order and a
    /// pipelining client gets natural backpressure.
    busy: bool,
    idle_since: Instant,
    close_after_flush: bool,
    /// Saw EOF or a fatal read error: flush what's pending, then close.
    read_closed: bool,
    write_stalled_since: Option<Instant>,
}

enum FlushOutcome {
    /// Everything pending was written (possibly nothing was pending).
    Drained,
    /// The socket would block; bytes remain buffered.
    Blocked,
    /// The connection is unusable (error, or write-stall past the budget).
    Broken,
}

impl Conn {
    fn push_line(&mut self, response: &str) {
        self.out.extend_from_slice(response.as_bytes());
        self.out.push(b'\n');
    }

    fn pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Writes as much buffered output as the socket accepts. Returns the
    /// outcome plus whether any byte moved (for loop progress accounting).
    fn flush(&mut self, write_timeout: Duration) -> (FlushOutcome, bool) {
        let mut moved = false;
        while self.out_pos < self.out.len() {
            match self.writer.write(&self.out[self.out_pos..]) {
                Ok(0) => return (FlushOutcome::Broken, moved),
                Ok(n) => {
                    self.out_pos += n;
                    self.write_stalled_since = None;
                    moved = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    let since = *self.write_stalled_since.get_or_insert_with(Instant::now);
                    if since.elapsed() > write_timeout {
                        // The client stopped reading its responses; it
                        // cannot pin buffer memory forever.
                        return (FlushOutcome::Broken, moved);
                    }
                    return (FlushOutcome::Blocked, moved);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return (FlushOutcome::Broken, moved),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        (FlushOutcome::Drained, moved)
    }
}

/// The single-threaded readiness event loop: accepts, frames, dispatches
/// jobs, flushes completions, and enforces every per-connection timeout.
fn event_loop(shared: &Shared, listener: &TcpListener) -> std::io::Result<()> {
    let cfg = &shared.cfg;
    let frame_timeout = Duration::from_millis(cfg.frame_timeout_ms.max(1));
    let idle_timeout = Duration::from_millis(cfg.idle_timeout_ms.max(1));
    let write_timeout = Duration::from_millis(cfg.write_timeout_ms.max(1));
    let mut poller = Poller::new();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut ready: Vec<u64> = Vec::new();
    let mut to_close: Vec<u64> = Vec::new();
    let mut progress = true;
    loop {
        // Readiness scan; when the previous pass made progress, don't
        // sleep — there may be more to do right now.
        poller.poll(
            &mut ready,
            if progress { Duration::ZERO } else { LOOP_TICK },
        );
        ready.sort_unstable();
        progress = false;

        // 1. Accept new connections (stops once drain begins).
        if !shared.shutdown.load(Ordering::SeqCst) {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progress = true;
                        accept_conn(shared, stream, &mut conns, &mut poller, &mut next_token);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        shared.begin_drain();
                        shared.close_jobs();
                        return Err(e);
                    }
                }
            }
        }

        // 2. Route finished jobs back to their connections.
        let completed = std::mem::take(&mut *shared.completions.lock().expect("completions"));
        for done in completed {
            progress = true;
            if let Some(conn) = conns.get_mut(&done.conn) {
                conn.push_line(&done.response);
                conn.busy = false;
                conn.idle_since = Instant::now();
                if done.close {
                    conn.close_after_flush = true;
                }
            }
        }

        // 3. Service every connection: flush, then read/dispatch.
        to_close.clear();
        for (&token, conn) in conns.iter_mut() {
            let (outcome, moved) = conn.flush(write_timeout);
            progress |= moved;
            match outcome {
                FlushOutcome::Broken => {
                    to_close.push(token);
                    continue;
                }
                FlushOutcome::Blocked => continue,
                FlushOutcome::Drained => {}
            }
            if conn.close_after_flush || conn.read_closed {
                if !conn.pending_out() {
                    to_close.push(token);
                }
                continue;
            }
            if conn.busy {
                continue;
            }
            // Due when the socket has pending input (poller) or the frame
            // reader still buffers bytes from an earlier read — a complete
            // pipelined line, or a partial frame whose slow-loris budget
            // must keep being enforced even though no new bytes arrive.
            let due = ready.binary_search(&token).is_ok() || conn.reader.partial_len() > 0;
            if due {
                progress |= drive_conn(shared, conn, frame_timeout, write_timeout);
            } else if shared.past_grace() {
                // Quiesced connection during drain: nothing buffered,
                // nothing pending — close it.
                to_close.push(token);
            } else if conn.idle_since.elapsed() > idle_timeout {
                // Half-open / silent client: free the slot.
                to_close.push(token);
            }
        }
        for token in &to_close {
            conns.remove(token);
            poller.deregister(*token);
            progress = true;
        }

        // 4. Exit once drained: no accepted work left anywhere.
        if shared.shutdown.load(Ordering::SeqCst) {
            let jobs_idle = {
                let jobs = shared.jobs.lock().expect("jobs poisoned");
                jobs.queue.is_empty() && jobs.inflight == 0
            };
            let completions_empty = shared.completions.lock().expect("completions").is_empty();
            if jobs_idle && completions_empty && conns.is_empty() {
                return Ok(());
            }
        }
    }
}

fn accept_conn(
    shared: &Shared,
    stream: TcpStream,
    conns: &mut HashMap<u64, Conn>,
    poller: &mut Poller,
    next_token: &mut u64,
) {
    if conns.len() >= shared.cfg.max_connections {
        shared.metrics.record_rejected();
        // Best-effort rejection notice; the client may already be gone.
        let mut stream = stream;
        let _ = stream.set_write_timeout(Some(Duration::from_millis(
            shared.cfg.write_timeout_ms.max(1),
        )));
        let _ = writeln!(
            stream,
            "{}",
            typed_error(
                ErrorCode::Overloaded,
                "overloaded: connection limit reached"
            )
        );
        return;
    }
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let (writer, probe) = match (stream.try_clone(), stream.try_clone()) {
        (Ok(w), Ok(p)) => (w, p),
        _ => return,
    };
    let token = *next_token;
    *next_token += 1;
    poller.register(token, probe);
    conns.insert(
        token,
        Conn {
            token,
            reader: FrameReader::new(stream),
            writer,
            out: Vec::new(),
            out_pos: 0,
            busy: false,
            idle_since: Instant::now(),
            close_after_flush: false,
            read_closed: false,
            write_stalled_since: None,
        },
    );
}

/// Reads and handles frames from one due connection until it goes busy,
/// blocks, errors, or exhausts its per-pass fairness budget. Returns
/// whether any frame was consumed (loop progress).
fn drive_conn(
    shared: &Shared,
    conn: &mut Conn,
    frame_timeout: Duration,
    write_timeout: Duration,
) -> bool {
    let metrics = shared.metrics.shard(0);
    let mut acted = false;
    for _ in 0..FRAMES_PER_TICK {
        match conn.reader.read_frame(Some(frame_timeout)) {
            Ok(Frame::Line(line)) => {
                acted = true;
                conn.idle_since = Instant::now();
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let arrival = Instant::now();
                if shared.past_grace() {
                    // Drain straggler: a typed goodbye, not a dropped
                    // connection.
                    metrics.record_shutting_down();
                    conn.push_line(&typed_error(
                        ErrorCode::ShuttingDown,
                        "server is draining and the grace period has passed",
                    ));
                    conn.close_after_flush = true;
                    break;
                }
                if handle_line(shared, conn, line, arrival) {
                    // A job is in flight; stop reading until it completes.
                    break;
                }
                // Inline reply: hand it to the socket right away so a
                // request/reply client never waits a full tick.
                let (outcome, _) = conn.flush(write_timeout);
                if matches!(outcome, FlushOutcome::Broken) {
                    conn.read_closed = true;
                    break;
                }
                if conn.close_after_flush {
                    break;
                }
            }
            Ok(Frame::Eof) => {
                // Flush anything pending (e.g. an oversize notice), then
                // close.
                conn.read_closed = true;
                acted = true;
                break;
            }
            Err(FrameError::TimedOut { .. }) => break,
            Err(FrameError::SlowFrame { partial }) => {
                acted = true;
                metrics.record_slow_client();
                conn.push_line(&typed_error(
                    ErrorCode::SlowClient,
                    &format!(
                        "request frame stalled after {partial} byte(s); \
                         send complete lines within the frame budget"
                    ),
                ));
                conn.close_after_flush = true;
                break;
            }
            Err(FrameError::Oversized { discarded }) => {
                acted = true;
                metrics.record_error();
                conn.push_line(&typed_error(
                    ErrorCode::FrameOversized,
                    &format!(
                        "request line exceeds the {MAX_LINE_BYTES}-byte limit \
                         ({discarded} bytes discarded); resynchronized at the next line"
                    ),
                ));
                // Resynchronized: the connection keeps serving.
                let (outcome, _) = conn.flush(write_timeout);
                if matches!(outcome, FlushOutcome::Broken) {
                    conn.read_closed = true;
                    break;
                }
            }
            // Peer vanished mid-frame: nobody left to answer.
            Err(FrameError::Truncated { .. }) | Err(FrameError::Io(_)) => {
                conn.read_closed = true;
                acted = true;
                break;
            }
        }
    }
    acted
}

/// Handles one complete request line on the event loop. Cheap requests are
/// answered inline into the connection's output buffer; plan/audit requests
/// are dispatched to the worker pool. Returns true when a job went in
/// flight (the connection must stop reading).
fn handle_line(shared: &Shared, conn_state: &mut Conn, line: &str, arrival: Instant) -> bool {
    let metrics = shared.metrics.shard(0);
    match parse_request(line) {
        Ok(Request::Stats) => {
            metrics.record_stats();
            conn_state.push_line(&stats_response(&shared.metrics.snapshot()));
            false
        }
        Ok(Request::Shutdown) => {
            shared.begin_drain();
            conn_state.push_line(&shutdown_response());
            conn_state.close_after_flush = true;
            false
        }
        Ok(Request::Plan {
            seqs,
            method,
            model,
            cluster,
            nodes,
            deadline_ms,
        }) => {
            let deadline = deadline_ms.map(|ms| arrival + Duration::from_millis(ms));
            dispatch_job(
                shared,
                conn_state,
                JobRequest::Plan {
                    seqs,
                    method,
                    model,
                    cluster,
                    nodes,
                    deadline,
                },
            )
        }
        Ok(Request::Audit { plan }) => dispatch_job(shared, conn_state, JobRequest::Audit { plan }),
        Err(msg) => {
            metrics.record_error();
            conn_state.push_line(&error_response(&msg));
            false
        }
    }
}

/// Queues a job for the worker pool, bounded by `max_queue`. On a full
/// queue the request is rejected typed and the connection keeps serving.
/// Returns true when the job was queued.
fn dispatch_job(shared: &Shared, conn_state: &mut Conn, request: JobRequest) -> bool {
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    if jobs.queue.len() >= shared.cfg.max_queue {
        drop(jobs);
        shared.metrics.record_rejected();
        conn_state.push_line(&typed_error(
            ErrorCode::Overloaded,
            "overloaded: queue full",
        ));
        return false;
    }
    jobs.queue.push_back(Job {
        conn: conn_state.token,
        request,
    });
    shared.metrics.set_queue_depth(jobs.queue.len());
    drop(jobs);
    shared.job_ready.notify_one();
    conn_state.busy = true;
    true
}

fn worker_loop(shared: &Shared, worker: usize) {
    // Shard 0 belongs to the event loop; workers take 1..=workers.
    let metrics = shared.metrics.shard(worker + 1);
    loop {
        let job = {
            let mut jobs = shared.jobs.lock().expect("jobs poisoned");
            loop {
                if let Some(job) = jobs.queue.pop_front() {
                    jobs.inflight += 1;
                    shared.metrics.set_queue_depth(jobs.queue.len());
                    break Some(job);
                }
                if jobs.closed {
                    break None;
                }
                let (guard, _) = shared
                    .job_ready
                    .wait_timeout(jobs, Duration::from_millis(50))
                    .expect("jobs poisoned");
                jobs = guard;
            }
        };
        let Some(job) = job else { return };
        let conn = job.conn;
        // Panic containment: whatever the handler does, the job answers
        // typed and the worker survives.
        let completion = match catch_unwind(AssertUnwindSafe(|| execute_job(shared, metrics, job)))
        {
            Ok(response) => Completion {
                conn,
                response,
                close: false,
            },
            Err(_) => {
                metrics.record_worker_panic();
                metrics.record_error();
                Completion {
                    conn,
                    response: typed_error(
                        ErrorCode::WorkerPanicked,
                        "the worker panicked serving this request; \
                         the panic was contained and the pool is intact",
                    ),
                    close: true,
                }
            }
        };
        shared
            .completions
            .lock()
            .expect("completions")
            .push(completion);
        shared.jobs.lock().expect("jobs poisoned").inflight -= 1;
    }
}

fn execute_job(shared: &Shared, metrics: MetricsShard<'_>, job: Job) -> String {
    match job.request {
        JobRequest::Plan {
            seqs,
            method,
            model,
            cluster,
            nodes,
            deadline,
        } => match serve_plan(
            shared, metrics, &seqs, method, model, cluster, nodes, deadline,
        ) {
            Ok(r) => r,
            Err((code, msg)) => {
                if code == ErrorCode::DeadlineExceeded {
                    metrics.record_deadline_exceeded();
                } else {
                    metrics.record_error();
                }
                typed_error(code, &msg)
            }
        },
        JobRequest::Audit { plan } => match audit_plan(shared, &plan) {
            Ok(r) => r,
            Err((code, msg)) => {
                metrics.record_error();
                typed_error(code, &msg)
            }
        },
    }
}

/// Fails with `deadline_exceeded` once `deadline` has passed.
fn check_deadline(deadline: Option<Instant>, stage: &str) -> Result<(), (ErrorCode, String)> {
    match deadline {
        Some(d) if Instant::now() >= d => Err((
            ErrorCode::DeadlineExceeded,
            format!("deadline expired {stage}"),
        )),
        _ => Ok(()),
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_plan(
    shared: &Shared,
    metrics: MetricsShard<'_>,
    seqs: &[u64],
    method: Option<String>,
    model: Option<String>,
    cluster: Option<String>,
    nodes: Option<usize>,
    deadline: Option<Instant>,
) -> Result<String, (ErrorCode, String)> {
    let cfg = &shared.cfg;
    let bad = |msg: String| (ErrorCode::BadRequest, msg);
    let scheduler = registry::scheduler_by_name(method.as_deref().unwrap_or(&cfg.method))
        .map_err(|n| bad(format!("unknown method '{n}'")))?;
    let model = registry::model_by_name(model.as_deref().unwrap_or(&cfg.model))
        .map_err(|n| bad(format!("unknown model '{n}'")))?;
    let cluster = registry::cluster_by_name(
        cluster.as_deref().unwrap_or(&cfg.cluster),
        nodes.unwrap_or(cfg.nodes),
    )
    .map_err(|n| bad(format!("unknown cluster '{n}'")))?;
    let ctx = SchedulerCtx::new(&cluster, &model);
    let batch = Batch::new(seqs.to_vec());

    let start = Instant::now();
    // A request that expired while queued is answered typed, before any
    // planner time is spent on it.
    check_deadline(deadline, "while queued, before planning")?;
    let (key, canonical) = PlanKey::new(scheduler.name(), &batch, &ctx);
    let (cached, hit, degraded) = loop {
        if let Some(cached) = shared.cache.lookup(&key) {
            break (cached, true, false);
        }
        // Single-flight: the first miss for a key leads the planner run;
        // concurrent misses follow it and share the outcome.
        match shared.flights.join(&key) {
            Join::Leader(flight) => {
                // The previous leader may have completed between our miss
                // and taking leadership — the cache is the source of truth.
                if let Some(cached) = shared.cache.lookup(&key) {
                    flight.complete(FlightOutcome::Cached);
                    break (cached, true, false);
                }
                let outcome = lead_plan(shared, metrics, scheduler.as_ref(), &canonical, &ctx);
                // Insert before completing the flight so nobody can miss
                // the cache after the flight retires.
                if let FlightOutcome::Planned(cached) = &outcome {
                    shared.cache.insert(key.clone(), Arc::clone(cached));
                }
                match &outcome {
                    FlightOutcome::Planned(cached) => {
                        let cached = Arc::clone(cached);
                        flight.complete(outcome);
                        break (cached, false, false);
                    }
                    FlightOutcome::Degraded(cached) => {
                        let cached = Arc::clone(cached);
                        flight.complete(outcome);
                        break (cached, false, true);
                    }
                    FlightOutcome::Failed(code, msg) => {
                        let err = (*code, msg.clone());
                        flight.complete(outcome);
                        return Err(err);
                    }
                    FlightOutcome::Cached => unreachable!("lead_plan never returns Cached"),
                }
            }
            Join::Follower(flight) => {
                metrics.record_coalesced();
                match flight.wait(deadline) {
                    None => {
                        return Err((
                            ErrorCode::DeadlineExceeded,
                            "deadline expired waiting on a coalesced planner run".to_string(),
                        ))
                    }
                    Some(FlightOutcome::Planned(cached)) => break (cached, false, false),
                    Some(FlightOutcome::Degraded(cached)) => break (cached, false, true),
                    Some(FlightOutcome::Failed(code, msg)) => return Err((code, msg)),
                    // The leader found the key cached; re-check ourselves.
                    Some(FlightOutcome::Cached) => continue,
                }
            }
        }
    };
    let plan = cached.materialize(&canonical);
    // Audit what actually goes on the wire — the materialized plan, after
    // any cache re-indexing, coalescing fan-out, or fallback — so a cache,
    // permutation, or degraded-path bug can never ship a corrupt plan to a
    // trainer.
    validate_with_batch(&plan, &ctx, &batch).map_err(|v| {
        (
            ErrorCode::AuditFailed,
            format!("served plan failed audit: {}", report(&v)),
        )
    })?;
    // Deadline check after planning, before the response write: a stalled
    // planner yields a typed error, not a stale plan.
    check_deadline(deadline, "after planning, before the response write")?;
    let elapsed = start.elapsed();
    if degraded {
        metrics.record_degraded();
    }
    metrics.record_plan(elapsed, hit);
    Ok(plan_response(
        &plan,
        hit,
        degraded,
        elapsed.as_micros().min(u64::MAX as u128) as u64,
    ))
}

/// Runs the primary planner as the leader of a single-flight: admission
/// gate (charged once for the whole flight), circuit breaker, contained
/// chaos/panic handling. Never returns [`FlightOutcome::Cached`].
fn lead_plan(
    shared: &Shared,
    metrics: MetricsShard<'_>,
    scheduler: &dyn Scheduler,
    canonical: &CanonicalBatch,
    ctx: &SchedulerCtx,
) -> FlightOutcome {
    // Admission: the gate bounds estimated in-flight planner time, the
    // breaker short-circuits a failing planner. Either verdict degrades
    // to the fallback scheduler instead of queueing.
    match shared.gate.try_admit() {
        None => {
            metrics.record_shed();
            degraded_flight(shared, metrics, canonical, ctx)
        }
        Some(permit) => {
            if !shared.breaker.allow() {
                shared.gate.cancel(permit);
                degraded_flight(shared, metrics, canonical, ctx)
            } else {
                metrics.record_planner_run();
                let t0 = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(chaos) = &shared.cfg.chaos {
                        chaos.before_plan();
                    }
                    scheduler.plan(&canonical.to_batch(), ctx)
                }));
                shared.gate.release(permit, t0.elapsed());
                match outcome {
                    Ok(Ok(plan)) => {
                        shared.breaker.record_success();
                        FlightOutcome::Planned(Arc::new(CachedPlan::new(plan, &canonical.lens)))
                    }
                    Ok(Err(e)) => {
                        if shared.breaker.record_failure() {
                            metrics.record_breaker_trip();
                        }
                        FlightOutcome::Failed(
                            ErrorCode::PlanFailed,
                            format!("planning failed: {e}"),
                        )
                    }
                    Err(_) => {
                        // Planner panic, contained at the request level:
                        // typed error out (fanned to every waiter), worker
                        // intact, breaker counts the failure.
                        if shared.breaker.record_failure() {
                            metrics.record_breaker_trip();
                        }
                        metrics.record_worker_panic();
                        FlightOutcome::Failed(
                            ErrorCode::WorkerPanicked,
                            "the planner panicked on this request; the panic was \
                             contained and the worker pool is intact"
                                .to_string(),
                        )
                    }
                }
            }
        }
    }
}

/// Plans the canonical batch with the fallback scheduler for a degraded
/// flight. Degraded plans are *not* cached — the next uncongested miss
/// should get the primary planner's answer — but they fan out to every
/// waiter of the flight, each materializing for its own ordering.
fn degraded_flight(
    shared: &Shared,
    metrics: MetricsShard<'_>,
    canonical: &CanonicalBatch,
    ctx: &SchedulerCtx,
) -> FlightOutcome {
    let fallback = match registry::scheduler_by_name(&shared.cfg.degraded_method) {
        Ok(f) => f,
        Err(n) => {
            return FlightOutcome::Failed(
                ErrorCode::PlanFailed,
                format!("degraded-mode fallback scheduler '{n}' is unknown"),
            )
        }
    };
    match catch_unwind(AssertUnwindSafe(|| {
        fallback.plan(&canonical.to_batch(), ctx)
    })) {
        Ok(Ok(plan)) => FlightOutcome::Degraded(Arc::new(CachedPlan::new(plan, &canonical.lens))),
        Ok(Err(e)) => FlightOutcome::Failed(
            ErrorCode::PlanFailed,
            format!("degraded-mode planning failed: {e}"),
        ),
        Err(_) => {
            metrics.record_worker_panic();
            FlightOutcome::Failed(
                ErrorCode::WorkerPanicked,
                "the fallback planner panicked; the panic was contained".to_string(),
            )
        }
    }
}

/// Handles an `audit` request: parse the client's plan document and run
/// the full audit against the server's configured default context.
fn audit_plan(shared: &Shared, plan_text: &str) -> Result<String, (ErrorCode, String)> {
    let cfg = &shared.cfg;
    let plan = plan_from_json(plan_text).map_err(|e| (ErrorCode::BadRequest, e.to_string()))?;
    let model = registry::model_by_name(&cfg.model)
        .map_err(|n| (ErrorCode::BadRequest, format!("unknown model '{n}'")))?;
    let cluster = registry::cluster_by_name(&cfg.cluster, cfg.nodes)
        .map_err(|n| (ErrorCode::BadRequest, format!("unknown cluster '{n}'")))?;
    let ctx = SchedulerCtx::new(&cluster, &model);
    match validate(&plan, &ctx) {
        Ok(()) => Ok("{\"ok\":true,\"audited\":true,\"violations\":0}".to_string()),
        Err(v) => Err((
            ErrorCode::AuditFailed,
            format!(
                "plan failed audit ({} violation(s)): {}",
                v.len(),
                report(&v)
            ),
        )),
    }
}

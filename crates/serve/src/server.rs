//! The TCP front-end: a bounded worker pool serving line-delimited JSON
//! plan requests out of the shared canonicalizing cache.
//!
//! Architecture: one non-blocking acceptor loop plus `workers` handler
//! threads draining a bounded connection queue (Mutex + Condvar). When the
//! queue is full the acceptor answers `{"ok":false,"error":"overloaded"}`
//! and closes the connection instead of queuing unbounded work — queue
//! depth *is* the backpressure signal. A `shutdown` request flips a shared
//! flag; the acceptor stops accepting, workers finish their current
//! connection and exit, and [`Server::run`] returns the final metrics.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use zeppelin_core::plan_io::plan_from_json;
use zeppelin_core::scheduler::SchedulerCtx;
use zeppelin_core::validate::{report, validate, validate_with_batch};
use zeppelin_data::batch::Batch;

use crate::cache::{CacheStats, CachedPlan, PlanCache, PlanKey};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::protocol::{
    error_response, parse_request, plan_response, shutdown_response, stats_response, Request,
};
use crate::registry;

/// Upper bound on one request line, in bytes. A client streaming an
/// endless line would otherwise grow the read buffer without bound; over
/// the cap the worker answers with an error and closes the connection
/// (the rest of the line cannot be resynchronized).
pub const MAX_LINE_BYTES: u64 = 1 << 20;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Handler threads.
    pub workers: usize,
    /// Connections allowed to wait for a worker before rejection.
    pub max_queue: usize,
    /// Plan-cache capacity (entries).
    pub cache_capacity: usize,
    /// Default scheduler for requests without `method`.
    pub method: String,
    /// Default model preset.
    pub model: String,
    /// Default cluster preset.
    pub cluster: String,
    /// Default node count.
    pub nodes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7077".to_string(),
            workers: 4,
            max_queue: 64,
            cache_capacity: 1024,
            method: "zeppelin".to_string(),
            model: "3b".to_string(),
            cluster: "a".to_string(),
            nodes: 2,
        }
    }
}

/// Everything [`Server::run`] hands back after a graceful shutdown.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Final service metrics.
    pub metrics: MetricsSnapshot,
    /// Final cache counters.
    pub cache: CacheStats,
    /// Plans held in the cache at shutdown.
    pub cached_plans: usize,
}

struct Shared {
    cfg: ServerConfig,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    metrics: ServiceMetrics,
    cache: Mutex<PlanCache>,
}

/// A bound planning server, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener (non-blocking accept loop).
    ///
    /// # Errors
    ///
    /// Propagates socket errors (address in use, permission...).
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let cache = Mutex::new(PlanCache::new(cfg.cache_capacity));
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(Shared {
                cfg,
                shutdown: AtomicBool::new(false),
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                metrics: ServiceMetrics::new(),
                cache,
            }),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `shutdown` request arrives, then drains the workers
    /// and reports final metrics.
    ///
    /// # Errors
    ///
    /// Propagates unexpected accept errors (transient `WouldBlock` /
    /// `Interrupted` are retried).
    pub fn run(self) -> std::io::Result<ServerReport> {
        let shared = Arc::clone(&self.shared);
        // The scope joins every worker before returning, so in-flight
        // connections finish and the final snapshot below sees them.
        std::thread::scope(|scope| -> std::io::Result<()> {
            for _ in 0..shared.cfg.workers.max(1) {
                let shared = Arc::clone(&shared);
                scope.spawn(move || worker_loop(&shared));
            }
            while !shared.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => enqueue(&shared, stream),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        shared.shutdown.store(true, Ordering::SeqCst);
                        shared.available.notify_all();
                        return Err(e);
                    }
                }
            }
            // Wake any workers parked on the empty queue so they can exit.
            shared.available.notify_all();
            Ok(())
        })?;
        let cache = self.shared.cache.lock().expect("cache poisoned");
        Ok(ServerReport {
            metrics: self.shared.metrics.snapshot(),
            cache: cache.stats(),
            cached_plans: cache.len(),
        })
    }
}

fn enqueue(shared: &Shared, stream: TcpStream) {
    let mut queue = shared.queue.lock().expect("queue poisoned");
    if queue.len() >= shared.cfg.max_queue {
        drop(queue);
        shared.metrics.record_rejected();
        // Best-effort rejection notice; the client may already be gone.
        let mut stream = stream;
        let _ = stream.set_nonblocking(false);
        let _ = writeln!(stream, "{}", error_response("overloaded: queue full"));
        return;
    }
    queue.push_back(stream);
    shared.metrics.set_queue_depth(queue.len());
    drop(queue);
    shared.available.notify_one();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    shared.metrics.set_queue_depth(queue.len());
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("queue poisoned");
                queue = guard;
            }
        };
        let Some(stream) = stream else { return };
        handle_connection(shared, stream);
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    // Keep-alive connections poll the shutdown flag between reads so a
    // drain cannot hang on an idle client.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // The take adapter caps how much one line can buffer; a line that
        // fills it is hostile (or a protocol break) and unrecoverable,
        // because the remainder cannot be resynchronized.
        match reader
            .by_ref()
            .take(MAX_LINE_BYTES + 1)
            .read_line(&mut line)
        {
            Ok(0) => return, // client hung up
            Ok(_) if line.len() as u64 > MAX_LINE_BYTES => {
                shared.metrics.record_error();
                let _ = writeln!(
                    writer,
                    "{}",
                    error_response(&format!(
                        "request line exceeds the {MAX_LINE_BYTES}-byte limit"
                    ))
                );
                return;
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(line.trim()) {
            Ok(Request::Stats) => {
                shared.metrics.record_stats();
                stats_response(&shared.metrics.snapshot())
            }
            Ok(Request::Shutdown) => {
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.available.notify_all();
                let _ = writeln!(writer, "{}", shutdown_response());
                return;
            }
            Ok(Request::Plan {
                seqs,
                method,
                model,
                cluster,
                nodes,
            }) => match serve_plan(shared, &seqs, method, model, cluster, nodes) {
                Ok(r) => r,
                Err(msg) => {
                    shared.metrics.record_error();
                    error_response(&msg)
                }
            },
            Ok(Request::Audit { plan }) => match audit_plan(shared, &plan) {
                Ok(r) => r,
                Err(msg) => {
                    shared.metrics.record_error();
                    error_response(&msg)
                }
            },
            Err(msg) => {
                shared.metrics.record_error();
                error_response(&msg)
            }
        };
        if writeln!(writer, "{response}").is_err() {
            return;
        }
    }
}

fn serve_plan(
    shared: &Shared,
    seqs: &[u64],
    method: Option<String>,
    model: Option<String>,
    cluster: Option<String>,
    nodes: Option<usize>,
) -> Result<String, String> {
    let cfg = &shared.cfg;
    let scheduler = registry::scheduler_by_name(method.as_deref().unwrap_or(&cfg.method))
        .map_err(|n| format!("unknown method '{n}'"))?;
    let model = registry::model_by_name(model.as_deref().unwrap_or(&cfg.model))
        .map_err(|n| format!("unknown model '{n}'"))?;
    let cluster = registry::cluster_by_name(
        cluster.as_deref().unwrap_or(&cfg.cluster),
        nodes.unwrap_or(cfg.nodes),
    )
    .map_err(|n| format!("unknown cluster '{n}'"))?;
    let ctx = SchedulerCtx::new(&cluster, &model);
    let batch = Batch::new(seqs.to_vec());

    let start = Instant::now();
    let (key, canonical) = PlanKey::new(scheduler.name(), &batch, &ctx);
    let looked_up = shared.cache.lock().expect("cache poisoned").lookup(&key);
    let (plan, hit) = match looked_up {
        Some(cached) => (cached.materialize(&canonical), true),
        None => {
            // Plan outside the cache lock: a slow partition must not stall
            // cache hits on other workers. Concurrent misses for one key
            // plan twice and the last insert wins — both compute the same
            // canonical plan, so either entry is valid.
            let plan = scheduler
                .plan(&canonical.to_batch(), &ctx)
                .map_err(|e| format!("planning failed: {e}"))?;
            let cached = Arc::new(CachedPlan::new(plan, &canonical.lens));
            let materialized = cached.materialize(&canonical);
            shared
                .cache
                .lock()
                .expect("cache poisoned")
                .insert(key, cached);
            (materialized, false)
        }
    };
    // Audit what actually goes on the wire — the materialized plan, after
    // any cache re-indexing — so a cache or permutation bug can never ship
    // a corrupt plan to a trainer.
    validate_with_batch(&plan, &ctx, &batch)
        .map_err(|v| format!("served plan failed audit: {}", report(&v)))?;
    let elapsed = start.elapsed();
    shared.metrics.record_plan(elapsed, hit);
    Ok(plan_response(
        &plan,
        hit,
        elapsed.as_micros().min(u64::MAX as u128) as u64,
    ))
}

/// Handles an `audit` request: parse the client's plan document and run
/// the full audit against the server's configured default context.
fn audit_plan(shared: &Shared, plan_text: &str) -> Result<String, String> {
    let cfg = &shared.cfg;
    let plan = plan_from_json(plan_text).map_err(|e| e.to_string())?;
    let model = registry::model_by_name(&cfg.model).map_err(|n| format!("unknown model '{n}'"))?;
    let cluster = registry::cluster_by_name(&cfg.cluster, cfg.nodes)
        .map_err(|n| format!("unknown cluster '{n}'"))?;
    let ctx = SchedulerCtx::new(&cluster, &model);
    match validate(&plan, &ctx) {
        Ok(()) => Ok("{\"ok\":true,\"audited\":true,\"violations\":0}".to_string()),
        Err(v) => Err(format!(
            "plan failed audit ({} violation(s)): {}",
            v.len(),
            report(&v)
        )),
    }
}

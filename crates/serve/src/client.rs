//! A blocking client for the serving protocol, used by `zeppelin-cli
//! client` and the loopback smoke tests.
//!
//! The retry discipline mirrors the protocol's error typing: **transport**
//! failures (connect refused/timed out, read timed out, connection reset
//! before a response) are retried with jittered exponential backoff, while
//! a **typed server error** is a final verdict — the server is alive and
//! has decided; retrying an `overloaded` or `shutting_down` response
//! identically only amplifies the load the server just shed.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::Request;

/// Client knobs: per-attempt timeouts and the retry budget.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-attempt budget for connect, write, and response read.
    pub timeout: Duration,
    /// Transport-failure retries after the first attempt (0 = one shot).
    pub retries: u32,
    /// Base backoff before the first retry; doubles per retry, each sleep
    /// jittered to a deterministic 50–100% of its nominal value so client
    /// herds decorrelate.
    pub backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            timeout: Duration::from_secs(30),
            retries: 0,
            backoff: Duration::from_millis(50),
        }
    }
}

impl ClientConfig {
    /// A config with every field defaulted except the per-attempt timeout.
    pub fn with_timeout_ms(timeout_ms: u64) -> ClientConfig {
        ClientConfig {
            timeout: Duration::from_millis(timeout_ms.max(1)),
            ..ClientConfig::default()
        }
    }

    /// Sets the transport-failure retry budget.
    pub fn retries(mut self, retries: u32) -> ClientConfig {
        self.retries = retries;
        self
    }
}

/// Whether a transport error is worth retrying: the request may never have
/// reached the server (connect failures) or the server never answered
/// (timeouts, resets, closes before a response). Anything else — bad
/// address, interrupted locally — fails fast.
fn retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::ConnectionRefused
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::NotConnected
            | ErrorKind::BrokenPipe
            | ErrorKind::TimedOut
            | ErrorKind::WouldBlock
            | ErrorKind::UnexpectedEof
    )
}

/// Backoff before retry `attempt` (1-based): exponential doubling with
/// deterministic jitter down to 50–100% of nominal. The jitter source is a
/// cheap hash of the attempt number — no clock, no shared RNG state — so
/// tests stay reproducible while concurrent clients still spread out.
fn backoff_for(base: Duration, attempt: u32) -> Duration {
    let nominal = base.saturating_mul(1u32 << attempt.min(16).saturating_sub(1));
    let h = (attempt as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(17);
    let frac = 0.5 + 0.5 * ((h % 1_000) as f64 / 1_000.0);
    nominal.mul_f64(frac)
}

fn attempt(addr: &SocketAddr, req: &Request, timeout: Duration) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout.min(Duration::from_secs(5))))?;
    writeln!(stream, "{}", req.to_line())?;
    stream.flush()?;
    let mut line = String::new();
    let n = BufReader::new(stream).read_line(&mut line)?;
    if n == 0 {
        return Err(std::io::Error::new(
            ErrorKind::UnexpectedEof,
            "server closed the connection without responding",
        ));
    }
    Ok(line.trim_end().to_string())
}

/// Sends one request under `cfg`, retrying transport failures with
/// jittered exponential backoff. A response line — success *or* typed
/// error — ends the attempt loop: typed errors are server verdicts, never
/// retried.
///
/// # Errors
///
/// Returns the last transport error once the retry budget is exhausted,
/// or an `InvalidInput` error for an unresolvable address.
pub fn send_request_with(
    addr: impl ToSocketAddrs,
    req: &Request,
    cfg: &ClientConfig,
) -> std::io::Result<String> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "no address"))?;
    let mut last_err = None;
    for n in 0..=cfg.retries {
        if n > 0 {
            std::thread::sleep(backoff_for(cfg.backoff, n));
        }
        match attempt(&addr, req, cfg.timeout) {
            Ok(line) => return Ok(line),
            Err(e) if retryable(&e) && n < cfg.retries => last_err = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last_err.unwrap_or_else(|| std::io::Error::other("retry loop ended without an attempt")))
}

/// Sends one request with the default config (30 s timeout, no retries).
///
/// # Errors
///
/// Propagates connection/IO errors; a server that closes without
/// responding yields `UnexpectedEof`.
pub fn send_request(addr: impl ToSocketAddrs, req: &Request) -> std::io::Result<String> {
    send_request_with(addr, req, &ClientConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_jitters_within_bounds() {
        let base = Duration::from_millis(100);
        for attempt_n in 1..=6u32 {
            let nominal = base * (1 << (attempt_n - 1));
            let b = backoff_for(base, attempt_n);
            assert!(
                b >= nominal.mul_f64(0.5) && b <= nominal,
                "attempt {attempt_n}: {b:?} outside [{:?}, {nominal:?}]",
                nominal.mul_f64(0.5)
            );
        }
        // Deterministic: same attempt, same sleep.
        assert_eq!(backoff_for(base, 3), backoff_for(base, 3));
    }

    #[test]
    fn transport_errors_are_retryable_verdicts_are_not() {
        for kind in [
            ErrorKind::ConnectionRefused,
            ErrorKind::TimedOut,
            ErrorKind::UnexpectedEof,
            ErrorKind::BrokenPipe,
        ] {
            assert!(retryable(&std::io::Error::new(kind, "x")), "{kind:?}");
        }
        for kind in [ErrorKind::InvalidInput, ErrorKind::PermissionDenied] {
            assert!(!retryable(&std::io::Error::new(kind, "x")), "{kind:?}");
        }
    }

    #[test]
    fn refused_connections_exhaust_the_retry_budget() {
        // A port nothing listens on: reserve it, then drop the listener.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let cfg = ClientConfig {
            timeout: Duration::from_millis(200),
            retries: 2,
            backoff: Duration::from_millis(1),
        };
        let t0 = std::time::Instant::now();
        let err =
            send_request_with(format!("127.0.0.1:{port}"), &Request::Stats, &cfg).unwrap_err();
        assert!(retryable(&err), "refused is a transport failure: {err}");
        // Three attempts happened (two backoff sleeps of ~1-4ms).
        assert!(t0.elapsed() < Duration::from_secs(2));
    }
}

//! A minimal blocking client for the serving protocol, used by
//! `zeppelin-cli client` and the loopback smoke tests.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::Request;

/// Sends one request and returns the raw response line.
///
/// # Errors
///
/// Propagates connection/IO errors; a server that closes without
/// responding yields `UnexpectedEof`.
pub fn send_request(addr: impl ToSocketAddrs, req: &Request) -> std::io::Result<String> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    writeln!(stream, "{}", req.to_line())?;
    stream.flush()?;
    let mut line = String::new();
    let n = BufReader::new(stream).read_line(&mut line)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection without responding",
        ));
    }
    Ok(line.trim_end().to_string())
}

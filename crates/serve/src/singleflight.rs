//! Single-flight coalescing of identical in-flight plan keys.
//!
//! When N requests for the same [`PlanKey`] race on a cold cache, only the
//! first — the *leader* — runs the planner; the rest become *followers* that
//! block on the leader's [`Flight`] and receive the same
//! `Arc<`[`CachedPlan`]`>` when it lands. One planner run is charged to the
//! admission gate, no matter how many requests it serves; each follower
//! still materializes the shared canonical plan for its own batch ordering
//! and remains subject to its own deadline while waiting.
//!
//! Correctness notes:
//!
//! - Flights are keyed by the **full** `PlanKey` (digest-accelerated via
//!   [`DigestHasherBuilder`], equality on all fields), so a digest collision
//!   costs a second planner run, never a wrong plan fanned out.
//! - A leader that unwinds without completing its flight (a panic outside
//!   the contained planner run) fails the flight from [`FlightGuard`]'s
//!   `Drop`, so followers always wake — no flight leaks.
//! - Becoming a leader races with the previous leader completing: callers
//!   must re-check the cache after [`FlightTable::join`] returns
//!   [`Join::Leader`] (the previous leader inserts into the cache *before*
//!   retiring its flight, so the re-check is sufficient).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::cache::{CachedPlan, DigestHasherBuilder, PlanKey};
use crate::protocol::ErrorCode;

/// How a coalesced planner run ended, fanned out to every waiter.
#[derive(Debug, Clone)]
pub enum FlightOutcome {
    /// The primary planner produced a canonical plan (it was also cached).
    Planned(Arc<CachedPlan>),
    /// The fallback scheduler produced a degraded canonical plan (never
    /// cached — each waiter materializes it for its own ordering).
    Degraded(Arc<CachedPlan>),
    /// The run failed; every waiter reports the same typed error.
    Failed(ErrorCode, String),
    /// The leader found the key already cached after joining (it lost the
    /// race to a previous leader); waiters should re-check the cache.
    Cached,
}

/// One in-flight planner run that waiters can block on.
#[derive(Debug)]
pub struct Flight {
    done: Mutex<Option<FlightOutcome>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Blocks until the leader completes the flight, or until `deadline`
    /// passes (`None` = wait forever). Returns `None` only on deadline
    /// expiry — the caller owes its client a typed `deadline_exceeded`.
    pub fn wait(&self, deadline: Option<Instant>) -> Option<FlightOutcome> {
        let mut done = self.done.lock().expect("flight lock");
        loop {
            if let Some(outcome) = done.as_ref() {
                return Some(outcome.clone());
            }
            match deadline {
                None => done = self.cv.wait(done).expect("flight lock"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    let (guard, _) = self.cv.wait_timeout(done, d - now).expect("flight lock");
                    done = guard;
                }
            }
        }
    }

    fn complete(&self, outcome: FlightOutcome) {
        let mut done = self.done.lock().expect("flight lock");
        if done.is_none() {
            *done = Some(outcome);
            self.cv.notify_all();
        }
    }
}

/// The result of [`FlightTable::join`]: lead the planner run, or follow an
/// existing one.
pub enum Join<'a> {
    /// No flight was in progress for the key — the caller must run the
    /// planner and [`FlightGuard::complete`] the flight. Boxed: the guard
    /// carries a full [`PlanKey`], which would otherwise dwarf the
    /// follower variant.
    Leader(Box<FlightGuard<'a>>),
    /// Another request is already planning this key — [`Flight::wait`] for
    /// its outcome.
    Follower(Arc<Flight>),
}

/// Leadership of one flight; completing (or dropping) it retires the key
/// from the table and wakes every follower.
pub struct FlightGuard<'a> {
    table: &'a FlightTable,
    key: PlanKey,
    flight: Arc<Flight>,
    completed: bool,
}

impl FlightGuard<'_> {
    /// Publishes the outcome to every follower and retires the flight.
    pub fn complete(mut self, outcome: FlightOutcome) {
        self.finish(outcome);
    }

    fn finish(&mut self, outcome: FlightOutcome) {
        if self.completed {
            return;
        }
        self.completed = true;
        self.table
            .inflight
            .lock()
            .expect("flight table lock")
            .remove(&self.key);
        self.flight.complete(outcome);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        // A leader unwinding without completing (panic outside the contained
        // planner run) must not strand its followers.
        self.finish(FlightOutcome::Failed(
            ErrorCode::WorkerPanicked,
            "coalesced planner run was abandoned".to_string(),
        ));
    }
}

/// The registry of in-flight planner runs, keyed by full [`PlanKey`].
#[derive(Debug, Default)]
pub struct FlightTable {
    inflight: Mutex<HashMap<PlanKey, Arc<Flight>, DigestHasherBuilder>>,
}

impl FlightTable {
    /// An empty table.
    pub fn new() -> FlightTable {
        FlightTable::default()
    }

    /// Joins the flight for `key`: the first caller becomes the leader, any
    /// caller arriving while the leader is in flight becomes a follower.
    pub fn join(&self, key: &PlanKey) -> Join<'_> {
        let mut inflight = self.inflight.lock().expect("flight table lock");
        if let Some(flight) = inflight.get(key) {
            return Join::Follower(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        inflight.insert(key.clone(), Arc::clone(&flight));
        Join::Leader(Box::new(FlightGuard {
            table: self,
            key: key.clone(),
            flight,
            completed: false,
        }))
    }

    /// Number of keys currently in flight.
    pub fn len(&self) -> usize {
        self.inflight.lock().expect("flight table lock").len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
    use zeppelin_core::zeppelin::Zeppelin;
    use zeppelin_data::batch::Batch;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn key() -> PlanKey {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192);
        PlanKey::new("zeppelin", &Batch::new(vec![9000, 500]), &ctx).0
    }

    #[test]
    fn leader_then_followers_share_one_outcome() {
        let table = FlightTable::new();
        let k = key();
        let Join::Leader(guard) = table.join(&k) else {
            panic!("first join leads");
        };
        let Join::Follower(flight) = table.join(&k) else {
            panic!("second join follows");
        };
        assert_eq!(table.len(), 1);

        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192);
        let plan = Zeppelin::new()
            .plan(&Batch::new(vec![9000, 500]), &ctx)
            .unwrap();
        let cached = Arc::new(CachedPlan::new(plan, &k.lens));
        guard.complete(FlightOutcome::Planned(Arc::clone(&cached)));

        match flight.wait(None) {
            Some(FlightOutcome::Planned(shared)) => {
                assert!(Arc::ptr_eq(&shared, &cached), "waiters share the Arc");
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert!(table.is_empty(), "completed flights retire their key");
    }

    #[test]
    fn follower_deadlines_bound_the_wait() {
        let table = FlightTable::new();
        let k = key();
        let Join::Leader(_guard) = table.join(&k) else {
            panic!("first join leads");
        };
        let Join::Follower(flight) = table.join(&k) else {
            panic!("second join follows");
        };
        let deadline = Instant::now() + Duration::from_millis(30);
        assert!(
            flight.wait(Some(deadline)).is_none(),
            "a stalled flight must not outlive the waiter's deadline"
        );
    }

    #[test]
    fn dropped_leadership_fails_the_flight_instead_of_stranding_waiters() {
        let table = FlightTable::new();
        let k = key();
        let Join::Leader(guard) = table.join(&k) else {
            panic!("first join leads");
        };
        let Join::Follower(flight) = table.join(&k) else {
            panic!("second join follows");
        };
        drop(guard);
        match flight.wait(None) {
            Some(FlightOutcome::Failed(code, _)) => {
                assert_eq!(code, ErrorCode::WorkerPanicked);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert!(table.is_empty(), "abandoned flights retire their key too");
    }
}

//! # Zeppelin
//!
//! A from-scratch Rust reproduction of *"Zeppelin: Balancing
//! Variable-length Workloads in Data Parallel Large Model Training"*
//! (EuroSys 2026), built on a deterministic discrete-event cluster
//! simulator instead of the paper's GPU testbed.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`sim`] — the cluster simulator (topology, fluid-flow network, DAG
//!   engine, traces);
//! - [`model`] — the analytic transformer cost model;
//! - [`data`] — variable-length dataset distributions and batch samplers;
//! - [`solver`] — min-cost flow / simplex / bottleneck-transport solvers;
//! - [`core`] — Zeppelin itself: partitioner, attention engine workload
//!   math, routing layer, remapping layer, scheduler;
//! - [`baselines`] — TE CP, LLaMA CP, Hybrid DP, and packing;
//! - [`exec`] — plan lowering, step simulation, multi-step training runs;
//! - [`serve`] — the online planning service: canonicalizing plan cache,
//!   pipelined planner, and line-delimited-JSON TCP front-end;
//! - [`cluster`] — continuous multi-job cluster simulation: trace-driven
//!   arrivals, queueing policies, checkpoint-and-requeue preemption, and
//!   elastic autoscaling over the single-job stack.
//!
//! # Examples
//!
//! ```
//! use zeppelin::core::scheduler::{Scheduler, SchedulerCtx};
//! use zeppelin::core::zeppelin::Zeppelin;
//! use zeppelin::data::batch::Batch;
//! use zeppelin::exec::step::{simulate_step, StepConfig};
//! use zeppelin::model::config::llama_3b;
//! use zeppelin::sim::topology::cluster_a;
//!
//! let cluster = cluster_a(2);
//! let ctx = SchedulerCtx::new(&cluster, &llama_3b());
//! let batch = Batch::new(vec![20_000, 4_000, 1_000, 500]);
//! let report = simulate_step(&Zeppelin::new(), &batch, &ctx, &StepConfig::default()).unwrap();
//! assert!(report.throughput > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use zeppelin_baselines as baselines;
pub use zeppelin_cluster as cluster;
pub use zeppelin_core as core;
pub use zeppelin_data as data;
pub use zeppelin_exec as exec;
pub use zeppelin_model as model;
pub use zeppelin_serve as serve;
pub use zeppelin_sim as sim;
pub use zeppelin_solver as solver;

//! Thin binary wrapper over [`zeppelin::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = zeppelin::cli::parse_args(&args);
    if opts.command.is_empty() || opts.flags.contains_key("help") {
        print!("{}", zeppelin::cli::usage());
        return;
    }
    match zeppelin::cli::run(&opts) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", zeppelin::cli::usage());
            std::process::exit(1);
        }
    }
}

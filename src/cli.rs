//! Command-line interface: plan, simulate, and trace training steps from a
//! terminal. Argument parsing is hand-rolled (no external dependencies) and
//! unit-tested here; the `zeppelin-cli` binary is a thin wrapper.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_core::zones::zone_thresholds;
use zeppelin_data::batch::{sample_batch, Batch};
use zeppelin_data::distribution::LengthDistribution;
use zeppelin_exec::step::{simulate_step, StepConfig};
use zeppelin_model::config as models;
use zeppelin_model::config::ModelConfig;
use zeppelin_serve::protocol::Request;
use zeppelin_serve::registry;
use zeppelin_serve::{Server, ServerConfig};
use zeppelin_sim::topology::{cluster_a, cluster_b, cluster_c, cluster_mixed, ClusterSpec};

/// Parsed command-line options: flag name → value (`""` for bare flags).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Options {
    /// Positional command (first non-flag argument).
    pub command: String,
    /// Positional arguments after the command (e.g. `audit plan.json`).
    pub args: Vec<String>,
    /// `--flag value` and `--flag` entries.
    pub flags: BTreeMap<String, String>,
}

/// Errors from CLI parsing or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// No command given or an unknown command.
    UnknownCommand(String),
    /// A flag value failed to parse or referenced an unknown name.
    BadFlag {
        /// Flag name.
        flag: String,
        /// Offending value.
        value: String,
    },
    /// Planning or simulation failed.
    RunFailed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command '{c}' (try: {})", COMMANDS.join(", "))
            }
            CliError::BadFlag { flag, value } => write!(f, "bad value '{value}' for --{flag}"),
            CliError::RunFailed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Supported commands.
pub const COMMANDS: [&str; 14] = [
    "clusters", "models", "zones", "plan", "step", "compare", "explain", "audit", "run", "faults",
    "serve", "client", "chaos", "cluster",
];

/// Parses raw arguments (excluding the program name).
pub fn parse_args(args: &[String]) -> Options {
    let mut opts = Options::default();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = if it.peek().is_some_and(|v| !v.starts_with("--")) {
                it.next().cloned().unwrap_or_default()
            } else {
                String::new()
            };
            opts.flags.insert(name.to_string(), value);
        } else if opts.command.is_empty() {
            opts.command = arg.clone();
        } else {
            opts.args.push(arg.clone());
        }
    }
    opts
}

// Name resolution lives in zeppelin-serve's registry so the CLI and the
// serving protocol accept one vocabulary; here we only attach the flag name.
fn bad_flag(flag: &str) -> impl Fn(String) -> CliError + '_ {
    move |value| CliError::BadFlag {
        flag: flag.into(),
        value,
    }
}

fn model_by_name(name: &str) -> Result<ModelConfig, CliError> {
    registry::model_by_name(name).map_err(bad_flag("model"))
}

fn cluster_by_name(name: &str, nodes: usize) -> Result<ClusterSpec, CliError> {
    registry::cluster_by_name(name, nodes).map_err(bad_flag("cluster"))
}

fn dataset_by_name(name: &str) -> Result<LengthDistribution, CliError> {
    registry::dataset_by_name(name).map_err(bad_flag("dataset"))
}

fn scheduler_by_name(name: &str) -> Result<Box<dyn Scheduler>, CliError> {
    registry::scheduler_by_name(name).map_err(bad_flag("method"))
}

fn flag_usize(opts: &Options, name: &str, default: usize) -> Result<usize, CliError> {
    match opts.flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError::BadFlag {
            flag: name.into(),
            value: v.clone(),
        }),
    }
}

fn flag_u64(opts: &Options, name: &str, default: u64) -> Result<u64, CliError> {
    match opts.flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError::BadFlag {
            flag: name.into(),
            value: v.clone(),
        }),
    }
}

fn parse_seqs(opts: &Options) -> Result<Option<Batch>, CliError> {
    let Some(spec) = opts.flags.get("seqs") else {
        return Ok(None);
    };
    let mut lens = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let len: u64 = part.trim().parse().map_err(|_| CliError::BadFlag {
            flag: "seqs".into(),
            value: part.into(),
        })?;
        if len == 0 {
            return Err(CliError::BadFlag {
                flag: "seqs".into(),
                value: part.into(),
            });
        }
        lens.push(len);
    }
    if lens.is_empty() {
        return Err(CliError::BadFlag {
            flag: "seqs".into(),
            value: spec.clone(),
        });
    }
    Ok(Some(Batch::new(lens)))
}

/// Builds the batch: explicit `--seqs` wins, then `--seqs-file` (one length
/// per line), otherwise sampled from `--dataset` (default arxiv) at
/// `--tokens` (default 65536).
fn build_batch(opts: &Options) -> Result<Batch, CliError> {
    if let Some(batch) = parse_seqs(opts)? {
        return Ok(batch);
    }
    if let Some(path) = opts.flags.get("seqs-file") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::RunFailed(format!("reading {path}: {e}")))?;
        return zeppelin_data::batch::parse_lengths(&text)
            .map_err(|e| CliError::RunFailed(format!("{path}: {e}")));
    }
    let dist = dataset_by_name(opts.flags.get("dataset").map_or("arxiv", |s| s))?;
    let tokens = flag_u64(opts, "tokens", 65_536)?;
    let seed = flag_u64(opts, "seed", 42)?;
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(sample_batch(&dist, &mut rng, tokens))
}

fn build_ctx(opts: &Options) -> Result<(ClusterSpec, ModelConfig, SchedulerCtx), CliError> {
    let nodes = flag_usize(opts, "nodes", 2)?;
    let cluster = cluster_by_name(opts.flags.get("cluster").map_or("a", |s| s), nodes)?;
    let model = model_by_name(opts.flags.get("model").map_or("3b", |s| s))?;
    let ctx = SchedulerCtx::new(&cluster, &model);
    Ok((cluster, model, ctx))
}

/// Executes a parsed command, returning the text to print.
pub fn run(opts: &Options) -> Result<String, CliError> {
    match opts.command.as_str() {
        "clusters" => {
            let mut out = String::new();
            for c in [cluster_a(1), cluster_b(1), cluster_c(1), cluster_mixed(3)] {
                out.push_str(&format!(
                    "{}: {} GPUs/node @ {:.0} TFLOP/s, NVLink {:.0} GB/s, {} NIC(s) @ {:.0} Gb/s\n",
                    c.name,
                    c.node.gpus_per_node,
                    c.node.gpu.peak_flops / 1e12,
                    c.node.gpu.nvlink_bw / 1e9,
                    c.node.nic_count,
                    c.node.nic.bw * 8.0 / 1e9,
                ));
            }
            Ok(out)
        }
        "models" => {
            let mut out = String::new();
            for m in models::paper_models() {
                out.push_str(&format!(
                    "{}: hidden {}, layers {}, heads {}, ~{:.1}B params{}\n",
                    m.name,
                    m.hidden,
                    m.layers,
                    m.num_heads,
                    m.param_count() as f64 / 1e9,
                    if m.is_moe() { " (MoE)" } else { "" },
                ));
            }
            Ok(out)
        }
        "zones" => {
            let (cluster, model, ctx) = build_ctx(opts)?;
            let t = zone_thresholds(&model, &cluster);
            Ok(format!(
                "{} on {} (capacity {} tokens/GPU):\n  local      < {} tokens\n  intra-node < {} tokens\n  inter-node >= {} tokens\n",
                model.name, cluster.name, ctx.capacity, t.local_max, t.intra_max, t.intra_max
            ))
        }
        "plan" => {
            let (cluster, _, ctx) = build_ctx(opts)?;
            let batch = build_batch(opts)?;
            let scheduler = scheduler_by_name(opts.flags.get("method").map_or("zeppelin", |s| s))?;
            let plan = scheduler
                .plan(&batch, &ctx)
                .map_err(|e| CliError::RunFailed(e.to_string()))?;
            if let Some(path) = opts.flags.get("out") {
                std::fs::write(path, zeppelin_core::plan_io::plan_to_json(&plan))
                    .map_err(|e| CliError::RunFailed(format!("writing {path}: {e}")))?;
                return Ok(format!("wrote plan to {path}\n"));
            }
            let mut out = format!(
                "{}: {} sequences, {} tokens over {} GPUs\n",
                plan.scheduler,
                batch.len(),
                batch.total_tokens(),
                cluster.total_gpus()
            );
            for p in &plan.placements {
                out.push_str(&format!(
                    "  seq {:>3} {:>7} tokens  {:?} x{} ({:?})\n",
                    p.seq_index,
                    p.len,
                    p.zone,
                    p.ranks.len(),
                    p.mode
                ));
            }
            Ok(out)
        }
        "step" => {
            let (_, _, ctx) = build_ctx(opts)?;
            let batch = build_batch(opts)?;
            let report = if let Some(path) = opts.flags.get("plan") {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::RunFailed(format!("reading {path}: {e}")))?;
                let plan = zeppelin_core::plan_io::plan_from_json(&text)
                    .map_err(|e| CliError::RunFailed(e.to_string()))?;
                // Plans from files are untrusted: always run the full audit
                // before lowering, release builds included.
                let cfg = StepConfig {
                    audit_plans: true,
                    ..StepConfig::default()
                };
                zeppelin_exec::step::simulate_plan(&plan, &batch, &ctx, &cfg)
                    .map_err(|e| CliError::RunFailed(e.to_string()))?
            } else {
                let scheduler =
                    scheduler_by_name(opts.flags.get("method").map_or("zeppelin", |s| s))?;
                simulate_step(scheduler.as_ref(), &batch, &ctx, &StepConfig::default())
                    .map_err(|e| CliError::RunFailed(e.to_string()))?
            };
            let mut out = format!(
                "{}: step {} ({:.0} tokens/s)\n  layer forward {}, backward {}\n",
                report.scheduler,
                report.step_time,
                report.throughput,
                report.layer_forward,
                report.layer_backward
            );
            if let Some(path) = opts.flags.get("trace") {
                std::fs::write(path, report.trace_forward.to_chrome_json())
                    .map_err(|e| CliError::RunFailed(format!("writing {path}: {e}")))?;
                out.push_str(&format!("  wrote forward trace to {path}\n"));
            }
            Ok(out)
        }
        "compare" => {
            let (_, _, ctx) = build_ctx(opts)?;
            let batch = build_batch(opts)?;
            let mut out = String::new();
            let mut te: Option<f64> = None;
            for name in [
                "te",
                "double-ring",
                "ulysses",
                "llama",
                "hybrid",
                "zeppelin",
            ] {
                let scheduler = scheduler_by_name(name)?;
                let line =
                    match simulate_step(scheduler.as_ref(), &batch, &ctx, &StepConfig::default()) {
                        Ok(r) => {
                            if name == "te" {
                                te = Some(r.throughput);
                            }
                            let speedup = te
                                .map(|b| format!("{:.2}x", r.throughput / b))
                                .unwrap_or_else(|| "-".into());
                            format!(
                                "{:<14} {:>12.0} tokens/s  {speedup}\n",
                                r.scheduler, r.throughput
                            )
                        }
                        Err(e) => format!("{name:<14} failed: {e}\n"),
                    };
                out.push_str(&line);
            }
            Ok(out)
        }
        "run" => {
            let (_, _, ctx) = build_ctx(opts)?;
            let dist = dataset_by_name(opts.flags.get("dataset").map_or("arxiv", |s| s))?;
            let scheduler = scheduler_by_name(opts.flags.get("method").map_or("zeppelin", |s| s))?;
            let cfg = zeppelin_exec::trainer::RunConfig {
                steps: flag_usize(opts, "steps", 10)?,
                tokens_per_step: flag_u64(opts, "tokens", 65_536)?,
                seed: flag_u64(opts, "seed", 42)?,
                step: StepConfig::default(),
            };
            let report =
                zeppelin_exec::trainer::run_training(scheduler.as_ref(), &dist, &ctx, &cfg)
                    .map_err(|e| CliError::RunFailed(e.to_string()))?;
            if let Some(path) = opts.flags.get("json") {
                std::fs::write(path, zeppelin_exec::report::run_report_json(&report))
                    .map_err(|e| CliError::RunFailed(format!("writing {path}: {e}")))?;
                return Ok(format!("wrote run report to {path}\n"));
            }
            Ok(format!(
                "{}: {} steps on {}\n  mean {:.0} tokens/s (min {:.0}, max {:.0}), mean step {}\n",
                report.scheduler,
                report.steps.len(),
                dist.name,
                report.mean_throughput,
                report.min_throughput,
                report.max_throughput,
                report.mean_step_time
            ))
        }
        "faults" => {
            use zeppelin_exec::recovery::{run_training_faults, FaultRunConfig, RecoveryPolicy};
            use zeppelin_sim::fault::FaultSchedule;
            use zeppelin_sim::time::{SimDuration, SimTime};

            let (cluster, _, ctx) = build_ctx(opts)?;
            let dist = dataset_by_name(opts.flags.get("dataset").map_or("arxiv", |s| s))?;
            let scheduler = scheduler_by_name(opts.flags.get("method").map_or("zeppelin", |s| s))?;
            let steps = flag_usize(opts, "steps", 8)?;
            let crash_node = flag_usize(opts, "crash-node", cluster.nodes.saturating_sub(1))?;
            if crash_node >= cluster.nodes {
                return Err(CliError::BadFlag {
                    flag: "crash-node".into(),
                    value: crash_node.to_string(),
                });
            }
            let crash_ms = flag_u64(opts, "crash-at-ms", 1200)?;
            let faults = FaultSchedule::new().node_crash(
                &cluster,
                crash_node,
                SimTime::from_nanos(crash_ms.saturating_mul(1_000_000)),
            );
            let run_cfg = zeppelin_exec::trainer::RunConfig {
                steps,
                tokens_per_step: flag_u64(opts, "tokens", 65_536)?,
                seed: flag_u64(opts, "seed", 42)?,
                step: StepConfig::default(),
            };
            let mut out = format!(
                "node {crash_node} of {} crashes at t={crash_ms}ms; {} steps on {}\n\
                 {:<20} {:<10} {:>5} {:>10} {:>10} {:>9} {:>9} {:>5}\n",
                cluster.name,
                steps,
                dist.name,
                "policy",
                "outcome",
                "steps",
                "tokens/s",
                "goodput",
                "lost tok",
                "recovery",
                "ranks"
            );
            for policy in [
                RecoveryPolicy::FailStop,
                RecoveryPolicy::RetryWithBackoff {
                    max_retries: 3,
                    backoff: SimDuration::from_millis(25),
                },
                RecoveryPolicy::ReplanSurvivors,
                RecoveryPolicy::CheckpointRestart {
                    every_steps: 4,
                    restore_cost: SimDuration::from_millis(500),
                },
            ] {
                let name = policy.name();
                let cfg = FaultRunConfig {
                    run: run_cfg.clone(),
                    policy,
                    ..FaultRunConfig::default()
                };
                match run_training_faults(scheduler.as_ref(), &dist, &ctx, &cfg, &faults) {
                    Ok(r) => out.push_str(&format!(
                        "{:<20} {:<10} {:>5} {:>10.0} {:>10.0} {:>9} {:>8.2}s {:>5}\n",
                        name,
                        "completed",
                        r.committed_steps,
                        r.throughput,
                        r.goodput,
                        r.lost_tokens,
                        r.recovery_latency.as_secs_f64(),
                        r.final_ranks,
                    )),
                    Err(e) => out.push_str(&format!("{name:<20} error: {e}\n")),
                }
            }
            Ok(out)
        }
        "serve" => {
            let port = flag_usize(opts, "port", 7077)?;
            let host = opts.flags.get("host").map_or("127.0.0.1", |s| s);
            let defaults = ServerConfig::default();
            let cfg = ServerConfig {
                addr: format!("{host}:{port}"),
                workers: flag_usize(opts, "workers", 4)?.max(1),
                max_queue: flag_usize(opts, "queue", 64)?.max(1),
                cache_capacity: flag_usize(opts, "cache", 1024)?,
                cache_shards: flag_usize(opts, "cache-shards", defaults.cache_shards)?.max(1),
                max_connections: flag_usize(opts, "max-conns", defaults.max_connections)?.max(1),
                method: opts.flags.get("method").map_or("zeppelin", |s| s).into(),
                model: opts.flags.get("model").map_or("3b", |s| s).into(),
                cluster: opts.flags.get("cluster").map_or("a", |s| s).into(),
                nodes: flag_usize(opts, "nodes", 2)?,
                degraded_method: opts
                    .flags
                    .get("degraded-method")
                    .map_or(defaults.degraded_method.as_str(), |s| s)
                    .into(),
                grace_ms: flag_u64(opts, "grace-ms", defaults.grace_ms)?,
                idle_timeout_ms: flag_u64(opts, "idle-timeout-ms", defaults.idle_timeout_ms)?,
                frame_timeout_ms: flag_u64(opts, "frame-timeout-ms", defaults.frame_timeout_ms)?,
                write_timeout_ms: flag_u64(opts, "write-timeout-ms", defaults.write_timeout_ms)?,
                planner_highwater_ms: flag_u64(
                    opts,
                    "highwater-ms",
                    defaults.planner_highwater_ms,
                )?,
                planner_estimate_ms: defaults.planner_estimate_ms,
                breaker_failures: flag_u64(
                    opts,
                    "breaker-failures",
                    defaults.breaker_failures as u64,
                )?
                .clamp(1, u32::MAX as u64) as u32,
                breaker_cooldown_ms: flag_u64(
                    opts,
                    "breaker-cooldown-ms",
                    defaults.breaker_cooldown_ms,
                )?,
                chaos: None,
            };
            // Fail fast on bad defaults instead of erroring per-request.
            scheduler_by_name(&cfg.method)?;
            registry::scheduler_by_name(&cfg.degraded_method)
                .map_err(bad_flag("degraded-method"))?;
            model_by_name(&cfg.model)?;
            cluster_by_name(&cfg.cluster, cfg.nodes)?;
            let server = Server::bind(cfg)
                .map_err(|e| CliError::RunFailed(format!("bind {host}:{port}: {e}")))?;
            // Announce readiness before blocking; clients and the CI smoke
            // test wait for this line.
            println!("zeppelin-serve listening on {}", server.local_addr());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            let report = server
                .run()
                .map_err(|e| CliError::RunFailed(format!("serve: {e}")))?;
            let m = &report.metrics;
            Ok(format!(
                "shutdown: {} plan requests ({} hits, {:.1}% hit rate), {} stats, \
                 {} errors, {} rejected\n  plan latency p50 {}us p99 {}us p999 {}us; \
                 {} cached plans ({} evictions)\n  planner: {} runs, {} coalesced\n  \
                 faults: {} shed, {} degraded, \
                 {} deadline-exceeded, {} panics contained, {} respawns, \
                 {} breaker trips, {} slow clients, {} drain stragglers\n",
                m.plan_requests,
                m.cache_hits,
                m.hit_rate() * 100.0,
                m.stats_requests,
                m.errors,
                m.rejected,
                m.p50_us,
                m.p99_us,
                m.p999_us,
                report.cached_plans,
                report.cache.evictions,
                m.planner_runs,
                m.coalesced,
                m.shed,
                m.degraded,
                m.deadline_exceeded,
                m.worker_panics,
                m.worker_respawns,
                m.breaker_trips,
                m.slow_clients,
                m.shutting_down,
            ))
        }
        "chaos" => {
            let seed = flag_u64(opts, "seed", 42)?;
            let events = flag_usize(opts, "events", 12)?;
            let schedule = zeppelin_serve::ServeFaultSchedule::random(seed, events);
            schedule
                .validate()
                .map_err(|e| CliError::RunFailed(format!("chaos schedule: {e}")))?;
            let report = zeppelin_serve::run_chaos(&schedule)
                .map_err(|e| CliError::RunFailed(format!("chaos run: {e}")))?;
            let summary = report.summary();
            if report.passed() {
                Ok(format!("{summary}chaos invariant held (seed {seed})\n"))
            } else {
                Err(CliError::RunFailed(format!(
                    "{summary}chaos invariant VIOLATED (seed {seed})"
                )))
            }
        }
        "client" => {
            let port = flag_usize(opts, "port", 7077)?;
            let host = opts.flags.get("host").map_or("127.0.0.1", |s| s);
            let addr = format!("{host}:{port}");
            let op = opts.flags.get("op").map_or("plan", |s| s);
            let req = match op {
                "stats" => Request::Stats,
                "shutdown" => Request::Shutdown,
                "plan" => {
                    let nodes = match opts.flags.get("nodes") {
                        None => None,
                        Some(_) => Some(flag_usize(opts, "nodes", 2)?),
                    };
                    let deadline_ms = match opts.flags.get("deadline-ms") {
                        None => None,
                        Some(_) => Some(flag_u64(opts, "deadline-ms", 0)?),
                    };
                    Request::Plan {
                        seqs: build_batch(opts)?.seqs,
                        method: opts.flags.get("method").cloned(),
                        model: opts.flags.get("model").cloned(),
                        cluster: opts.flags.get("cluster").cloned(),
                        nodes,
                        deadline_ms,
                    }
                }
                other => {
                    return Err(CliError::BadFlag {
                        flag: "op".into(),
                        value: other.into(),
                    })
                }
            };
            // Transport failures retry with jittered backoff; typed server
            // errors come back as response lines and are never retried.
            let client_cfg = zeppelin_serve::ClientConfig::with_timeout_ms(flag_u64(
                opts,
                "timeout-ms",
                30_000,
            )?)
            .retries(flag_u64(opts, "retries", 0)?.min(u32::MAX as u64) as u32);
            let line = zeppelin_serve::send_request_with(addr.as_str(), &req, &client_cfg)
                .map_err(|e| CliError::RunFailed(format!("{addr}: {e}")))?;
            Ok(format!("{line}\n"))
        }
        "explain" => {
            let (cluster, model, ctx) = build_ctx(opts)?;
            let batch = build_batch(opts)?;
            let scheduler = scheduler_by_name(opts.flags.get("method").map_or("zeppelin", |s| s))?;
            let plan = scheduler
                .plan(&batch, &ctx)
                .map_err(|e| CliError::RunFailed(e.to_string()))?;
            let a = zeppelin_core::analysis::try_analyze(&plan, &model, &cluster).map_err(|v| {
                CliError::RunFailed(format!(
                    "plan failed audit: {}",
                    zeppelin_core::validate::report(&v)
                ))
            })?;
            let mut out = format!(
                "{}: zones local/intra/inter = {}/{}/{}\nattention critical path {:.3} ms, imbalance {:.3}, cross-node KV {:.1} MB\n",
                plan.scheduler,
                a.zone_counts.0,
                a.zone_counts.1,
                a.zone_counts.2,
                a.attn_critical_secs * 1e3,
                a.attn_imbalance(),
                a.total_inter_bytes() / 1e6,
            );
            out.push_str("rank  attn_ms  peak_tokens  intra_MB  inter_MB\n");
            for (r, est) in a.ranks.iter().enumerate() {
                out.push_str(&format!(
                    "{:>4}  {:>7.3}  {:>11}  {:>8.1}  {:>8.1}\n",
                    r,
                    est.attn_secs * 1e3,
                    est.peak_tokens,
                    est.intra_sent_bytes / 1e6,
                    est.inter_sent_bytes / 1e6,
                ));
            }
            Ok(out)
        }
        "audit" => {
            let path = opts
                .flags
                .get("plan")
                .cloned()
                .or_else(|| opts.args.first().cloned())
                .ok_or_else(|| CliError::BadFlag {
                    flag: "plan".into(),
                    value: "(missing: audit <plan.json>)".into(),
                })?;
            let text = std::fs::read_to_string(&path)
                .map_err(|e| CliError::RunFailed(format!("reading {path}: {e}")))?;
            let plan =
                zeppelin_core::plan_io::plan_from_json(&text).map_err(|e| match e {
                    zeppelin_core::plan_io::PlanIoError::Invalid(v) => CliError::RunFailed(
                        format!("{path}: {} violation(s)\n{}", v.len(), violation_lines(&v)),
                    ),
                    other => CliError::RunFailed(format!("{path}: {other}")),
                })?;
            let (cluster, _, ctx) = build_ctx(opts)?;
            // Conservation needs the source workload; only audit it when
            // the caller names one explicitly (a sampled default would
            // flag every plan for an unrelated batch).
            let result = match parse_seqs(opts)? {
                Some(batch) => zeppelin_core::validate::validate_with_batch(&plan, &ctx, &batch),
                None => zeppelin_core::validate::validate(&plan, &ctx),
            };
            match result {
                Ok(()) => Ok(format!(
                    "{path}: clean ({} placement(s), {} micro-batch(es), {} tokens on {} of {})\n",
                    plan.placements.len(),
                    plan.micro_batches,
                    plan.total_tokens(),
                    plan.scheduler,
                    cluster.name,
                )),
                Err(v) => Err(CliError::RunFailed(format!(
                    "{path}: {} violation(s)\n{}",
                    v.len(),
                    violation_lines(&v)
                ))),
            }
        }
        "cluster" => {
            use zeppelin_cluster::policy::{ClusterPolicy, FairShare, Fifo, Srwf};
            use zeppelin_cluster::trace::{trace_from_json, JobTrace, MAX_TRACE_BYTES};
            use zeppelin_cluster::{run_cluster, ClusterConfig};

            let nodes = flag_usize(opts, "nodes", 16)?.max(2);
            let cluster = cluster_by_name(opts.flags.get("cluster").map_or("a", |s| s), nodes)?;
            let policy: &dyn ClusterPolicy = match opts.flags.get("policy").map_or("fair", |s| s) {
                "fifo" => &Fifo,
                "srwf" => &Srwf,
                "fair" | "fair-share" => &FairShare,
                other => {
                    return Err(CliError::BadFlag {
                        flag: "policy".into(),
                        value: other.into(),
                    })
                }
            };
            // The trace: an explicit JSON file wins; otherwise a seeded
            // generated one (`--skewed` for the fairness scenario).
            let trace = if let Some(path) = opts.flags.get("trace") {
                let meta = std::fs::metadata(path)
                    .map_err(|e| CliError::RunFailed(format!("reading {path}: {e}")))?;
                // Bounded read, same discipline as plan files: refuse
                // oversized inputs before touching their contents.
                if meta.len() > MAX_TRACE_BYTES {
                    return Err(CliError::RunFailed(format!(
                        "{path}: trace file is {} bytes, over the {MAX_TRACE_BYTES}-byte limit",
                        meta.len()
                    )));
                }
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::RunFailed(format!("reading {path}: {e}")))?;
                trace_from_json(&text).map_err(|e| CliError::RunFailed(format!("{path}: {e}")))?
            } else {
                let jobs = flag_usize(opts, "jobs", 24)?.max(1);
                let seed = flag_u64(opts, "seed", 42)?;
                if opts.flags.contains_key("skewed") {
                    JobTrace::skewed(seed, jobs, &cluster)
                } else {
                    JobTrace::random(seed, jobs, &cluster)
                }
            };
            let scheduler = scheduler_by_name(opts.flags.get("method").map_or("zeppelin", |s| s))?;
            let cfg = ClusterConfig {
                cluster,
                ..ClusterConfig::default()
            };
            let report = run_cluster(policy, scheduler.as_ref(), &trace, &cfg)
                .map_err(|e| CliError::RunFailed(e.to_string()))?;
            report
                .check()
                .map_err(|e| CliError::RunFailed(format!("inconsistent report: {e}")))?;
            if let Some(path) = opts.flags.get("out") {
                std::fs::write(path, format!("{}\n", report.to_json()))
                    .map_err(|e| CliError::RunFailed(format!("writing {path}: {e}")))?;
            }
            let mut out = format!(
                "{} on {} nodes ({}): {} jobs — {} completed, {} failed, {} rejected\n\
                 makespan {:.2}s, goodput {:.0} tok/s (throughput {:.0}), utilization {:.2}\n\
                 JCT p50/p99 {:.2}s/{:.2}s, queue p50/p99 {:.2}s/{:.2}s\n\
                 Jain fairness {:.4}, {} preemption(s), {} replan(s)\n",
                report.policy,
                report.nodes,
                report.scheduler,
                report.outcomes.len(),
                report.completed,
                report.failed,
                report.rejected,
                report.makespan.as_secs_f64(),
                report.goodput,
                report.throughput,
                report.utilization,
                report.jct_p50.as_secs_f64(),
                report.jct_p99.as_secs_f64(),
                report.queue_p50.as_secs_f64(),
                report.queue_p99.as_secs_f64(),
                report.fairness,
                report.preemptions,
                report.replans,
            );
            for t in &report.tenants {
                out.push_str(&format!(
                    "  {:<8} {:>3} job(s), {:>3} completed, mean JCT {:>7.2}s, efficiency {:.2}\n",
                    t.tenant, t.jobs, t.completed, t.mean_jct_s, t.mean_efficiency
                ));
            }
            if opts.flags.contains_key("out") {
                out.push_str(&format!("wrote report to {}\n", opts.flags["out"]));
            }
            Ok(out)
        }
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

/// One violation per line, indented, for audit reports.
fn violation_lines(violations: &[zeppelin_core::validate::PlanViolation]) -> String {
    violations
        .iter()
        .map(|v| format!("  - {v}\n"))
        .collect::<String>()
}

/// Usage text.
pub fn usage() -> String {
    "zeppelin-cli <command> [flags]\n\
     commands:\n\
       clusters                         list cluster presets\n\
       models                           list model presets\n\
       zones    [--model M --cluster C --nodes N]\n\
       plan     [--method S --seqs 3000,500 | --dataset D --tokens T] [--out plan.json]\n\
       step     [--method S ... --trace out.json | --plan plan.json]\n\
       compare  [... same workload flags]\n\
       explain  [... same workload flags]  static per-rank cost analysis\n\
       audit    <plan.json> [--seqs L,...]  validate a plan file, report violations\n\
       run      [--steps N --json out.json] multi-step training run\n\
       faults   [--crash-node N --crash-at-ms T --steps N] recovery-policy table\n\
       serve    [--port P --workers W --queue Q --cache N] online planning server\n\
                [--cache-shards S --max-conns M]\n\
                [--grace-ms G --frame-timeout-ms F --idle-timeout-ms I]\n\
                [--highwater-ms H --degraded-method S --breaker-failures N --breaker-cooldown-ms C]\n\
       client   [--port P --op plan|stats|shutdown ... workload flags] one request\n\
                [--deadline-ms D --timeout-ms T --retries R]\n\
       chaos    [--seed S --events N] seeded fault storm against a loopback server\n\
       cluster  [--jobs N --seed S --policy fifo|srwf|fair --skewed | --trace t.json]\n\
                [--nodes N --out report.json] multi-job cluster simulation\n\
     flags:\n\
       --model    3b|7b|13b|30b|moe        (default 3b)\n\
       --cluster  a|b|c|mixed              (default a)\n\
       --nodes    N                        (default 2)\n\
       --method   zeppelin|zeppelin-het|straggler-remap|te|llama|hybrid|\n\
                  packing|ulysses|double-ring\n\
       --dataset  arxiv|github|prolong64k|stackexchange|openwebmath|fineweb\n\
       --tokens   total batch tokens       (default 65536)\n\
       --seqs     comma-separated lengths  (overrides --dataset)\n\
       --seqs-file path with one length per line (trace replay)\n\
       --seed     sampling seed            (default 42)\n\
       --trace    write Chrome trace JSON  (step only)\n\
       --host/--port serving address        (default 127.0.0.1:7077)\n\
       --op       plan|stats|shutdown      (client only, default plan)\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Options {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parser_splits_command_and_flags() {
        let o = opts(&["plan", "--model", "7b", "--seqs", "100,200", "--quiet"]);
        assert_eq!(o.command, "plan");
        assert_eq!(o.flags["model"], "7b");
        assert_eq!(o.flags["seqs"], "100,200");
        assert_eq!(o.flags["quiet"], "");
        // Positionals after the command are kept in order.
        let o = opts(&["audit", "plan.json", "--nodes", "2"]);
        assert_eq!(o.command, "audit");
        assert_eq!(o.args, vec!["plan.json".to_string()]);
    }

    #[test]
    fn unknown_command_errors() {
        let Err(e) = run(&opts(&["frobnicate"])) else {
            panic!("expected UnknownCommand");
        };
        assert!(matches!(e, CliError::UnknownCommand(_)));
        assert!(e.to_string().contains("compare"));
    }

    #[test]
    fn clusters_and_models_render() -> Result<(), CliError> {
        let c = run(&opts(&["clusters"]))?;
        assert!(c.contains("A800") && c.contains("H200"));
        let m = run(&opts(&["models"]))?;
        assert!(m.contains("LLaMA-7B") && m.contains("MoE"));
        Ok(())
    }

    #[test]
    fn zones_command_reports_thresholds() -> Result<(), CliError> {
        let out = run(&opts(&["zones", "--model", "7b"]))?;
        assert!(out.contains("local"));
        assert!(out.contains("intra-node"));
        Ok(())
    }

    #[test]
    fn plan_with_explicit_seqs() -> Result<(), CliError> {
        let out = run(&opts(&["plan", "--seqs", "30000,2000,500"]))?;
        assert!(out.contains("3 sequences"));
        assert!(out.contains("32500 tokens"));
        Ok(())
    }

    #[test]
    fn step_and_compare_run() -> Result<(), CliError> {
        let out = run(&opts(&["step", "--seqs", "8000,4000", "--method", "te"]))?;
        assert!(out.contains("tokens/s"));
        let out = run(&opts(&["compare", "--tokens", "16384", "--nodes", "1"]))?;
        assert!(out.contains("Zeppelin"));
        assert!(out.contains("TE CP"));
        Ok(())
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(matches!(
            run(&opts(&["zones", "--model", "70b"])),
            Err(CliError::BadFlag { .. })
        ));
        assert!(matches!(
            run(&opts(&["plan", "--seqs", "10,x"])),
            Err(CliError::BadFlag { .. })
        ));
        assert!(matches!(
            run(&opts(&["plan", "--seqs", "0"])),
            Err(CliError::BadFlag { .. })
        ));
        assert!(matches!(
            run(&opts(&["step", "--dataset", "wikipedia"])),
            Err(CliError::BadFlag { .. })
        ));
        assert!(matches!(
            run(&opts(&["step", "--nodes", "two"])),
            Err(CliError::BadFlag { .. })
        ));
    }

    #[test]
    fn explain_reports_static_analysis() -> Result<(), CliError> {
        let out = run(&opts(&[
            "explain",
            "--seqs",
            "9000,2000,500",
            "--nodes",
            "1",
        ]))?;
        assert!(out.contains("zones local/intra/inter"));
        assert!(out.contains("attn_ms"));
        Ok(())
    }

    #[test]
    fn plan_json_round_trips_through_files() -> Result<(), Box<dyn std::error::Error>> {
        let dir = std::env::temp_dir().join("zeppelin-cli-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("plan.json");
        let path_s = path.to_string_lossy().to_string();
        run(&opts(&["plan", "--seqs", "9000,500", "--out", &path_s]))?;
        let out = run(&opts(&["step", "--plan", &path_s, "--seqs", "9000,500"]))?;
        assert!(out.contains("tokens/s"));
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn audit_passes_real_plans_and_names_violations_in_hostile_ones(
    ) -> Result<(), Box<dyn std::error::Error>> {
        let dir = std::env::temp_dir().join("zeppelin-cli-audit-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("plan.json");
        let path_s = path.to_string_lossy().to_string();
        run(&opts(&[
            "plan",
            "--seqs",
            "30000,9000,500",
            "--out",
            &path_s,
        ]))?;
        // Clean, both with and without the conservation batch.
        let out = run(&opts(&["audit", &path_s]))?;
        assert!(out.contains("clean"), "{out}");
        let out = run(&opts(&["audit", &path_s, "--seqs", "30000,9000,500"]))?;
        assert!(out.contains("clean"), "{out}");
        // A structural break is caught at parse time with a field-named
        // report...
        let text = std::fs::read_to_string(&path)?;
        let mut broken =
            zeppelin_core::plan_io::plan_from_json(&text).expect("written plan parses");
        broken.micro_batches = 0;
        let hostile = dir.join("hostile.json");
        let hostile_s = hostile.to_string_lossy().to_string();
        std::fs::write(&hostile, zeppelin_core::plan_io::plan_to_json(&broken))?;
        let Err(CliError::RunFailed(msg)) = run(&opts(&["audit", &hostile_s])) else {
            panic!("hostile plan must fail the audit");
        };
        assert!(msg.contains("violation") && msg.contains("micro"), "{msg}");
        // ...and step --plan refuses the same file instead of panicking.
        let Err(CliError::RunFailed(msg)) = run(&opts(&[
            "step",
            "--plan",
            &hostile_s,
            "--seqs",
            "30000,9000,500",
        ])) else {
            panic!("step --plan must reject a hostile plan");
        };
        assert!(msg.contains("invalid plan"), "{msg}");
        // An out-of-range rank parses fine but fails the cluster audit.
        let mut oob_plan = zeppelin_core::plan_io::plan_from_json(&text).expect("plan parses");
        oob_plan.placements[0].ranks[0] = 999;
        let oob = dir.join("oob.json");
        let oob_s = oob.to_string_lossy().to_string();
        std::fs::write(&oob, zeppelin_core::plan_io::plan_to_json(&oob_plan))?;
        let Err(CliError::RunFailed(msg)) = run(&opts(&["audit", &oob_s])) else {
            panic!("out-of-range rank must fail the audit");
        };
        assert!(msg.contains("rank 999"), "{msg}");
        // Missing operand is a flag error, not a panic.
        assert!(matches!(
            run(&opts(&["audit"])),
            Err(CliError::BadFlag { .. })
        ));
        for p in [&path, &hostile, &oob] {
            std::fs::remove_file(p).ok();
        }
        Ok(())
    }

    #[test]
    fn run_command_aggregates_and_exports_json() -> Result<(), Box<dyn std::error::Error>> {
        let out = run(&opts(&[
            "run", "--steps", "2", "--tokens", "16384", "--nodes", "1",
        ]))?;
        assert!(out.contains("2 steps"));
        assert!(out.contains("tokens/s"));
        let dir = std::env::temp_dir().join("zeppelin-cli-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("run.json");
        let path_s = path.to_string_lossy().to_string();
        run(&opts(&[
            "run", "--steps", "2", "--tokens", "16384", "--nodes", "1", "--json", &path_s,
        ]))?;
        let text = std::fs::read_to_string(&path)?;
        assert!(zeppelin_exec::report::looks_like_json(&text));
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn faults_command_prints_a_recovery_table() -> Result<(), CliError> {
        let out = run(&opts(&[
            "faults",
            "--steps",
            "3",
            "--tokens",
            "16384",
            "--crash-at-ms",
            "200",
        ]))?;
        assert!(out.contains("fail-stop"));
        assert!(out.contains("replan-survivors"));
        assert!(out.contains("goodput"));
        // Fail-stop aborts while replanning completes on the survivors.
        assert!(out.contains("fail-stop") && out.contains("error: rank"));
        assert!(out.contains("completed"));
        assert!(matches!(
            run(&opts(&["faults", "--crash-node", "9"])),
            Err(CliError::BadFlag { .. })
        ));
        Ok(())
    }

    #[test]
    fn client_rejects_unknown_ops_and_dead_servers() {
        assert!(matches!(
            run(&opts(&["client", "--op", "fly"])),
            Err(CliError::BadFlag { .. })
        ));
        // Nothing listens on this port of the discard range.
        let err = run(&opts(&["client", "--op", "stats", "--port", "9"]));
        assert!(matches!(err, Err(CliError::RunFailed(_))));
    }

    #[test]
    fn serve_rejects_bad_defaults_before_binding() {
        assert!(matches!(
            run(&opts(&["serve", "--method", "mesh"])),
            Err(CliError::BadFlag { .. })
        ));
        assert!(matches!(
            run(&opts(&["serve", "--port", "many"])),
            Err(CliError::BadFlag { .. })
        ));
    }

    #[test]
    fn cluster_command_runs_and_round_trips_trace_files() -> Result<(), Box<dyn std::error::Error>>
    {
        // Small generated trace end-to-end, with a report file.
        let dir = std::env::temp_dir().join("zeppelin-cli-cluster-test");
        std::fs::create_dir_all(&dir)?;
        let report = dir.join("report.json");
        let report_s = report.to_string_lossy().to_string();
        let out = run(&opts(&[
            "cluster", "--nodes", "3", "--jobs", "5", "--seed", "7", "--policy", "fifo", "--out",
            &report_s,
        ]))?;
        assert!(out.contains("fifo on 3 nodes"), "{out}");
        assert!(out.contains("Jain fairness"), "{out}");
        let text = std::fs::read_to_string(&report)?;
        assert!(text.contains("\"fairness\""), "{text}");

        // An explicit trace file drives the run instead of the generator.
        let trace =
            zeppelin_cluster::trace::JobTrace::random(7, 4, &zeppelin_sim::topology::cluster_a(3));
        let tpath = dir.join("trace.json");
        let tpath_s = tpath.to_string_lossy().to_string();
        std::fs::write(&tpath, zeppelin_cluster::trace::trace_to_json(&trace))?;
        let out = run(&opts(&["cluster", "--nodes", "3", "--trace", &tpath_s]))?;
        assert!(out.contains("4 jobs"), "{out}");

        // Malformed trace files fail with a typed, file-named error.
        let bad = dir.join("bad.json");
        let bad_s = bad.to_string_lossy().to_string();
        std::fs::write(&bad, "{\"jobs\": [{\"id\": true}]}")?;
        let Err(CliError::RunFailed(msg)) = run(&opts(&["cluster", "--trace", &bad_s])) else {
            panic!("malformed trace must fail");
        };
        assert!(msg.contains("bad.json"), "{msg}");
        for p in [&report, &tpath, &bad] {
            std::fs::remove_file(p).ok();
        }
        Ok(())
    }

    #[test]
    fn cluster_command_rejects_bad_flags() {
        assert!(matches!(
            run(&opts(&["cluster", "--policy", "lottery"])),
            Err(CliError::BadFlag { .. })
        ));
        assert!(matches!(
            run(&opts(&["cluster", "--trace", "/nonexistent/trace.json"])),
            Err(CliError::RunFailed(_))
        ));
    }

    #[test]
    fn usage_mentions_every_command() {
        let u = usage();
        for c in COMMANDS {
            assert!(u.contains(c), "usage missing {c}");
        }
    }
}

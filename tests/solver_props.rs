//! Property-based tests of the optimization substrate: the combinatorial
//! bottleneck-transport solver against the LP reference, transportation
//! conservation, and min-cost-flow invariants.

use proptest::prelude::*;

use zeppelin::solver::bottleneck::{solve_bottleneck, solve_lp, RemapProblem};
use zeppelin::solver::mcmf::MinCostFlow;
use zeppelin::solver::transport::min_cost_transport;

fn remap_instance() -> impl Strategy<Value = RemapProblem> {
    (2usize..=3, 1usize..=4, 1.0f64..=20.0).prop_flat_map(|(nodes, per_node, ratio)| {
        let d = nodes * per_node;
        prop::collection::vec(0u64..200, d).prop_map(move |tokens| RemapProblem {
            tokens,
            node_of: (0..d).map(|i| i / per_node).collect(),
            intra_cost: 1.0,
            inter_cost: ratio.max(1.0),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn bottleneck_plan_achieves_balanced_targets(p in remap_instance()) {
        let plan = solve_bottleneck(&p);
        let after = plan.apply(&p.tokens);
        prop_assert_eq!(&after, &plan.targets);
        let total: u64 = p.tokens.iter().sum();
        prop_assert_eq!(after.iter().sum::<u64>(), total);
        // Targets are balanced within one token.
        let max = after.iter().max().copied().unwrap_or(0);
        let min = after.iter().min().copied().unwrap_or(0);
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn combinatorial_never_loses_to_the_lp(p in remap_instance()) {
        let comb = solve_bottleneck(&p);
        let lp = solve_lp(&p);
        // The LP solution is rounded to integers, so allow it the benefit
        // of a token's worth of inter-node cost.
        prop_assert!(
            comb.max_sender_cost <= lp.max_sender_cost + p.inter_cost + 1e-6,
            "comb {} vs lp {} on {:?}", comb.max_sender_cost, lp.max_sender_cost, p.tokens
        );
    }

    #[test]
    fn senders_only_send_surplus(p in remap_instance()) {
        let plan = solve_bottleneck(&p);
        let targets = &plan.targets;
        let mut sent = vec![0u64; p.tokens.len()];
        let mut recv = vec![0u64; p.tokens.len()];
        for m in &plan.moves {
            prop_assert!(m.tokens > 0);
            prop_assert_ne!(m.from, m.to);
            sent[m.from] += m.tokens;
            recv[m.to] += m.tokens;
        }
        for i in 0..p.tokens.len() {
            prop_assert_eq!(sent[i], p.tokens[i].saturating_sub(targets[i]));
            prop_assert_eq!(recv[i], targets[i].saturating_sub(p.tokens[i]));
        }
    }

    #[test]
    fn transport_conserves_and_is_optimal_2x2(
        s0 in 0i64..50, s1 in 0i64..50,
        d_split in 0i64..=100,
        c in prop::array::uniform4(1i64..20),
    ) {
        let total = s0 + s1;
        let d0 = (total * d_split / 100).min(total);
        let d1 = total - d0;
        let supply = [s0, s1];
        let demand = [d0, d1];
        let cost = vec![vec![c[0], c[1]], vec![c[2], c[3]]];
        let (ship, best) = min_cost_transport(&supply, &demand, &cost).unwrap();
        // Conservation.
        for i in 0..2 {
            prop_assert_eq!(ship[i].iter().sum::<i64>(), supply[i]);
            prop_assert_eq!(ship[0][i] + ship[1][i], demand[i]);
        }
        // Brute force over the single degree of freedom.
        let mut brute = i64::MAX;
        for x in 0..=s0.min(d0) {
            let r0 = s0 - x; // s0 -> d1.
            let r1 = d0 - x; // s1 -> d0.
            let r2 = s1 - r1; // s1 -> d1.
            if r0 < 0 || r1 < 0 || r2 < 0 || r0 + r2 != d1 {
                continue;
            }
            brute = brute.min(c[0] * x + c[1] * r0 + c[2] * r1 + c[3] * r2);
        }
        if brute != i64::MAX {
            prop_assert_eq!(best, brute);
        }
    }

    #[test]
    fn mcmf_flow_is_within_capacity_and_conserved(
        caps in prop::collection::vec(0i64..30, 6),
        costs in prop::collection::vec(0i64..10, 6),
    ) {
        // Fixed diamond topology with random capacities/costs.
        let arcs = [(0usize, 1usize), (0, 2), (1, 2), (1, 3), (2, 3), (0, 3)];
        let mut g = MinCostFlow::new(4);
        let mut edges = Vec::new();
        for ((&(u, v), &cap), &cost) in arcs.iter().zip(&caps).zip(&costs) {
            edges.push(((u, v), cap, g.add_edge(u, v, cap, cost)));
        }
        let r = g.solve(0, 3);
        prop_assert!(r.flow >= 0);
        let mut net = [0i64; 4];
        for &((u, v), cap, e) in &edges {
            let f = g.flow_on(e);
            prop_assert!(f >= 0 && f <= cap);
            net[u] -= f;
            net[v] += f;
        }
        prop_assert_eq!(net[0], -r.flow);
        prop_assert_eq!(net[3], r.flow);
        prop_assert_eq!(net[1], 0);
        prop_assert_eq!(net[2], 0);
    }
}

//! Determinism backstop for the cluster layer: a single-job trace on a
//! dedicated cluster must reproduce the standalone `run_training` step
//! timeline bit-identically. The driver pre-samples batches from the job
//! seed exactly as the trainer draws them and steps through the same
//! `simulate_step` on an identically derived context, so any divergence
//! here means the cluster layer is distorting the single-job stack.

use zeppelin::cluster::{run_cluster, ClusterConfig, Fifo, JobSpec, JobTrace, Outcome};
use zeppelin::core::scheduler::SchedulerCtx;
use zeppelin::core::zeppelin::Zeppelin;
use zeppelin::data::datasets::arxiv;
use zeppelin::exec::step::StepConfig;
use zeppelin::exec::trainer::{run_training, RunConfig};
use zeppelin::model::config::llama_3b;
use zeppelin::sim::time::SimTime;
use zeppelin::sim::topology::cluster_a;

#[test]
fn single_job_trace_matches_standalone_training_bit_for_bit() {
    const NODES: usize = 2;
    const STEPS: usize = 4;
    const TOKENS: u64 = 32_768;
    const SEED: u64 = 2026;

    // Standalone: the PR 4 trainer on a dedicated cluster.
    let cluster = cluster_a(NODES);
    let ctx = SchedulerCtx::new(&cluster, &llama_3b());
    let standalone = run_training(
        &Zeppelin::new(),
        &arxiv(),
        &ctx,
        &RunConfig {
            steps: STEPS,
            tokens_per_step: TOKENS,
            seed: SEED,
            step: StepConfig::default(),
        },
    )
    .expect("standalone run succeeds");

    // The same job as a one-entry cluster trace pinned to the full cluster.
    let trace = JobTrace::new().push(JobSpec {
        id: 0,
        tenant: "solo".into(),
        model: "3b".into(),
        dataset: "arxiv".into(),
        steps: STEPS,
        tokens_per_step: TOKENS,
        priority: 0,
        min_nodes: NODES,
        preferred_nodes: NODES,
        max_nodes: NODES,
        arrival: SimTime::ZERO,
        seed: SEED,
    });
    let cfg = ClusterConfig {
        cluster,
        ..ClusterConfig::default()
    };
    let report = run_cluster(&Fifo, &Zeppelin::new(), &trace, &cfg).expect("cluster run succeeds");

    assert_eq!(report.completed, 1);
    let outcome = &report.outcomes[0];
    assert_eq!(outcome.outcome, Outcome::Completed);
    assert_eq!(outcome.preemptions, 0);
    assert_eq!(outcome.replans, 0);
    assert_eq!(
        outcome.queueing_delay.as_nanos(),
        0,
        "sole job never queues"
    );

    // The pinned comparison: per-step times identical to the nanosecond,
    // token totals identical, and the cluster clock's finish instant equal
    // to the sum of step times (the job starts at t=0 with no overheads).
    assert_eq!(outcome.step_times.len(), standalone.steps.len());
    for (i, (got, want)) in outcome
        .step_times
        .iter()
        .zip(standalone.steps.iter())
        .enumerate()
    {
        assert_eq!(
            got.as_nanos(),
            want.step_time.as_nanos(),
            "step {i} diverged from the standalone trainer"
        );
    }
    let standalone_tokens: u64 = standalone.steps.iter().map(|s| s.tokens).sum();
    assert_eq!(outcome.useful_tokens, standalone_tokens);
    assert_eq!(outcome.lost_tokens, 0);
    let wall: u64 = standalone
        .steps
        .iter()
        .map(|s| s.step_time.as_nanos())
        .sum();
    assert_eq!(outcome.finish.as_nanos(), wall);
    assert_eq!(report.makespan.as_nanos(), wall);
}

//! Property-based tests of the simulator: DAG completion, monotone spans,
//! critical-path lower bounds, and max-min fairness capacity invariants on
//! randomized workloads.

use proptest::prelude::*;

use zeppelin::sim::engine::{Simulator, Stream};
use zeppelin::sim::network::FlowNetwork;
use zeppelin::sim::time::SimDuration;
use zeppelin::sim::topology::{tiny_cluster, Port};

/// A randomized task description.
#[derive(Debug, Clone)]
enum Job {
    Compute { rank: usize, micros: u64 },
    Transfer { src: usize, dst: usize, mbytes: u64 },
}

fn jobs() -> impl Strategy<Value = Vec<(Job, Vec<prop::sample::Index>)>> {
    let job = prop_oneof![
        (0usize..8, 1u64..500).prop_map(|(rank, micros)| Job::Compute { rank, micros }),
        (0usize..8, 0usize..8, 1u64..200).prop_filter_map("distinct endpoints", |(s, d, m)| {
            (s != d).then_some(Job::Transfer {
                src: s,
                dst: d,
                mbytes: m,
            })
        }),
    ];
    prop::collection::vec(
        (
            job,
            prop::collection::vec(any::<prop::sample::Index>(), 0..3),
        ),
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_dags_complete_with_consistent_spans(spec in jobs()) {
        let cluster = tiny_cluster(2, 4);
        let mut sim = Simulator::new(&cluster);
        let mut ids = Vec::new();
        for (job, dep_idx) in &spec {
            let deps: Vec<_> = if ids.is_empty() {
                vec![]
            } else {
                let mut d: Vec<_> = dep_idx.iter().map(|ix| *ix.get(&ids)).collect();
                d.sort_unstable();
                d.dedup();
                d
            };
            let id = match job {
                Job::Compute { rank, micros } => sim
                    .compute(*rank, Stream::Compute, SimDuration::from_micros(*micros), deps, None)
                    .unwrap(),
                Job::Transfer { src, dst, mbytes } => sim
                    .transfer(*mbytes as f64 * 1e6, cluster.direct_path(*src, *dst), deps, None)
                    .unwrap(),
            };
            ids.push(id);
        }
        let report = sim.run().expect("acyclic DAG completes");
        for (i, (job, _)) in spec.iter().enumerate() {
            let (start, end) = report.spans[i];
            prop_assert!(end >= start);
            if let Job::Compute { micros, .. } = job {
                prop_assert_eq!((end - start).as_nanos(), micros * 1000);
            }
            prop_assert!(end <= report.makespan);
        }
    }

    #[test]
    fn makespan_is_at_least_any_rank_busy_sum(spec in jobs()) {
        let cluster = tiny_cluster(2, 4);
        let mut sim = Simulator::new(&cluster);
        let mut busy = [0u64; 8];
        for (job, _) in &spec {
            match job {
                Job::Compute { rank, micros } => {
                    busy[*rank] += micros * 1000;
                    sim.compute(*rank, Stream::Compute, SimDuration::from_micros(*micros), vec![], None)
                        .unwrap();
                }
                Job::Transfer { src, dst, mbytes } => {
                    sim.transfer(*mbytes as f64 * 1e6, cluster.direct_path(*src, *dst), vec![], None)
                        .unwrap();
                }
            }
        }
        let report = sim.run().unwrap();
        let max_busy = busy.iter().max().copied().unwrap_or(0);
        prop_assert!(
            report.makespan.as_nanos() >= max_busy,
            "makespan {} < busiest stream {}", report.makespan.as_nanos(), max_busy
        );
    }

    #[test]
    fn maxmin_rates_respect_every_port(
        flows in prop::collection::vec((0usize..8, 0usize..8, 1u64..100), 1..40)
    ) {
        let cluster = tiny_cluster(2, 4);
        let mut net = FlowNetwork::new();
        let mut started = 0;
        for (s, d, mb) in flows {
            if s == d {
                continue;
            }
            net.start_flow(mb as f64 * 1e6, &cluster.direct_path(s, d), |p| {
                cluster.port_capacity(p)
            });
            started += 1;
        }
        prop_assume!(started > 0);
        // Every port's aggregate usage stays within capacity.
        for r in 0..8 {
            for port in [
                Port::NvlinkOut(r), Port::NvlinkIn(r),
                Port::PcieOut(r), Port::PcieIn(r),
            ] {
                prop_assert!(net.port_usage(port) <= cluster.port_capacity(port) * (1.0 + 1e-9));
            }
        }
        for nic in 0..8 {
            for port in [Port::NicTx(nic), Port::NicRx(nic)] {
                prop_assert!(net.port_usage(port) <= cluster.port_capacity(port) * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn maxmin_is_work_conserving_on_a_single_bottleneck(
        n in 1usize..16,
    ) {
        // n identical flows through one NIC pair: each gets exactly cap/n.
        let cluster = tiny_cluster(2, 1);
        let mut net = FlowNetwork::new();
        let mut keys = Vec::new();
        for _ in 0..n {
            keys.push(net.start_flow(1e9, &cluster.direct_path(0, 1), |p| {
                cluster.port_capacity(p)
            }));
        }
        let cap = cluster.port_capacity(Port::NicTx(0));
        for k in keys {
            let rate = net.rate_of(k);
            prop_assert!((rate - cap / n as f64).abs() / cap < 1e-9);
        }
    }
}

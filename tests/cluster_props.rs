//! Property-based tests of the cluster layer: seeded trace generation and
//! whole-run replay are deterministic, and every arrived job terminates
//! exactly once under every shipped policy.
//!
//! Cluster runs are expensive (each job plans and simulates real steps), so
//! the case counts here are deliberately small; `PROPTEST_CASES` raises
//! them for a deeper soak.

use proptest::prelude::*;

use zeppelin::cluster::{
    run_cluster, ClusterConfig, ClusterPolicy, FairShare, Fifo, JobTrace, Srwf,
};
use zeppelin::core::zeppelin::Zeppelin;
use zeppelin::sim::topology::cluster_a;

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Same seed, same parameters: the generated trace is identical —
    /// field-for-field, arrival-for-arrival.
    #[test]
    fn trace_generation_replays_bit_identically(seed in 0u64..1_000_000, n in 4usize..12) {
        let cluster = cluster_a(4);
        let a = JobTrace::random(seed, n, &cluster);
        let b = JobTrace::random(seed, n, &cluster);
        prop_assert_eq!(a, b);
        let sa = JobTrace::skewed(seed, n, &cluster);
        let sb = JobTrace::skewed(seed, n, &cluster);
        prop_assert_eq!(sa, sb);
    }

    /// Replaying the same trace under the same policy reproduces the exact
    /// event log, outcome list, and serialized report.
    #[test]
    fn cluster_runs_replay_bit_identically(seed in 0u64..100_000, n in 4usize..9) {
        let cluster = cluster_a(4);
        let trace = JobTrace::random(seed, n, &cluster);
        let cfg = ClusterConfig { cluster, ..ClusterConfig::default() };
        let a = run_cluster(&FairShare, &Zeppelin::new(), &trace, &cfg).unwrap();
        let b = run_cluster(&FairShare, &Zeppelin::new(), &trace, &cfg).unwrap();
        prop_assert_eq!(&a.events, &b.events);
        prop_assert_eq!(&a.outcomes, &b.outcomes);
        prop_assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }

    /// Conservation: every arrived job reaches exactly one terminal state
    /// (completed, failed, or rejected) under every shipped policy, and the
    /// report's internal invariants hold.
    #[test]
    fn every_job_terminates_exactly_once(seed in 0u64..100_000, n in 4usize..9) {
        let cluster = cluster_a(4);
        let trace = JobTrace::random(seed, n, &cluster);
        let cfg = ClusterConfig { cluster, ..ClusterConfig::default() };
        for policy in [&Fifo as &dyn ClusterPolicy, &Srwf, &FairShare] {
            let r = run_cluster(policy, &Zeppelin::new(), &trace, &cfg).unwrap();
            prop_assert_eq!(
                r.completed + r.failed + r.rejected,
                n,
                "policy {}",
                policy.name()
            );
            prop_assert_eq!(r.outcomes.len(), n);
            prop_assert!(r.goodput <= r.throughput + 1e-9);
            r.check().map_err(TestCaseError::fail)?;
        }
    }
}

//! Worker-count invariance of the parallel sharded simulation core.
//!
//! The engine's rebalances may run on a worker pool
//! (`ZEPPELIN_SIM_WORKERS` / `Simulator::set_workers`), with component fill
//! outputs applied at the commit barrier in ascending component order. That
//! design claims *bit-identical* simulation whatever the worker count.
//! These properties enforce the claim end to end: random compute+transfer
//! DAGs on `cluster_a(4)` (32 ranks), with and without seeded fault
//! schedules, must produce exactly the same report — makespan, spans, trace
//! events, per-port byte totals (compared bitwise), stats-visible event
//! counts — or exactly the same typed error at 1, 2, and 8 workers, with
//! the parallel threshold forced to 1 so even tiny commits take the pool
//! path. Seeded replay at 8 workers must also be self-identical.

use proptest::prelude::*;

use zeppelin::sim::engine::{SimReport, Simulator, Stream, TraceInfo};
use zeppelin::sim::error::SimError;
use zeppelin::sim::fault::FaultSchedule;
use zeppelin::sim::time::{SimDuration, SimTime};
use zeppelin::sim::topology::{cluster_a, ClusterSpec, Port};
use zeppelin::sim::trace::{TraceCategory, TraceEvent};

const RANKS: usize = 32; // cluster_a(4): four 8-GPU nodes, GPU pairs share NICs.

/// A randomized task description (compute + transfers, optional deps).
#[derive(Debug, Clone)]
enum Job {
    Compute { rank: usize, micros: u64 },
    Transfer { src: usize, dst: usize, mbytes: u64 },
}

type Spec = Vec<(Job, Vec<prop::sample::Index>)>;

fn jobs() -> impl Strategy<Value = Spec> {
    let job = prop_oneof![
        (0usize..RANKS, 1u64..500).prop_map(|(rank, micros)| Job::Compute { rank, micros }),
        (0usize..RANKS, 0usize..RANKS, 1u64..200).prop_filter_map(
            "distinct endpoints",
            |(s, d, m)| {
                (s != d).then_some(Job::Transfer {
                    src: s,
                    dst: d,
                    mbytes: m,
                })
            }
        ),
    ];
    prop::collection::vec(
        (
            job,
            prop::collection::vec(any::<prop::sample::Index>(), 0..3),
        ),
        1..60,
    )
}

/// Builds the DAG with every task traced, so trace comparison sees all of it.
fn build(cluster: &ClusterSpec, spec: &Spec) -> Simulator {
    let mut sim = Simulator::new(cluster);
    let mut ids = Vec::new();
    for (i, (job, dep_idx)) in spec.iter().enumerate() {
        let deps: Vec<_> = if ids.is_empty() {
            vec![]
        } else {
            let mut d: Vec<_> = dep_idx.iter().map(|ix| *ix.get(&ids)).collect();
            d.sort_unstable();
            d.dedup();
            d
        };
        let id = match job {
            Job::Compute { rank, micros } => sim
                .compute(
                    *rank,
                    Stream::Compute,
                    SimDuration::from_micros(*micros),
                    deps,
                    Some(TraceInfo {
                        rank: *rank,
                        category: TraceCategory::LinearCompute,
                        label: format!("c{i}"),
                    }),
                )
                .unwrap(),
            Job::Transfer { src, dst, mbytes } => sim
                .transfer(
                    *mbytes as f64 * 1e6,
                    cluster.direct_path(*src, *dst),
                    deps,
                    Some(TraceInfo {
                        rank: *src,
                        category: TraceCategory::InterNode,
                        label: format!("x{i}"),
                    }),
                )
                .unwrap(),
        };
        ids.push(id);
    }
    sim
}

/// Everything deterministic in a report, floats captured bitwise.
type Fingerprint = (
    SimTime,
    Vec<(SimTime, SimTime)>,
    Vec<TraceEvent>,
    Vec<(Port, u64)>,
    u64,
);

fn fingerprint(r: &SimReport) -> Fingerprint {
    let mut ports: Vec<(Port, u64)> = r
        .port_bytes
        .iter()
        .map(|(&p, &b)| (p, b.to_bits()))
        .collect();
    ports.sort_unstable();
    (
        r.makespan,
        r.spans.clone(),
        r.trace.events().to_vec(),
        ports,
        r.stats.events,
    )
}

fn outcome(sim: &Simulator, faults: &FaultSchedule) -> Result<Fingerprint, SimError> {
    sim.run_with_faults(faults).map(|r| fingerprint(&r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// 1, 2, and 8 workers produce bit-identical fault-free reports.
    #[test]
    fn plain_runs_are_worker_count_invariant(spec in jobs()) {
        let cluster = cluster_a(4);
        let mut sim = build(&cluster, &spec);
        sim.set_parallel_threshold(1);
        sim.set_workers(1);
        let base = fingerprint(&sim.run().unwrap());
        for workers in [2usize, 8] {
            sim.set_workers(workers);
            let got = fingerprint(&sim.run().unwrap());
            prop_assert_eq!(&got, &base, "report diverged at {} workers", workers);
        }
    }

    /// Under a seeded fault schedule (slowdowns, NIC degradations, link
    /// flaps, crashes), every worker count yields the identical report or
    /// the identical typed error; 8 workers also replays self-identically.
    #[test]
    fn fault_runs_are_worker_count_invariant(spec in jobs(), seed in any::<u64>()) {
        let cluster = cluster_a(4);
        let horizon = SimTime::from_nanos(2_000_000); // 2 ms: mid-workload
        let faults = FaultSchedule::random(seed, &cluster, horizon);
        let mut sim = build(&cluster, &spec);
        sim.set_parallel_threshold(1);
        sim.set_workers(1);
        let base = outcome(&sim, &faults);
        for workers in [2usize, 8] {
            sim.set_workers(workers);
            let got = outcome(&sim, &faults);
            prop_assert_eq!(&got, &base, "outcome diverged at {} workers", workers);
        }
        // Seeded replay: same schedule, same DAG, same worker pool, twice.
        let replay = outcome(&sim, &faults);
        prop_assert_eq!(&replay, &base, "8-worker replay diverged");
    }
}

//! Cross-checks `zeppelin-core`'s static analyzer against the executor:
//! the analyzer's per-rank attention seconds use the same kernel model and
//! the same exact pair accounting as the lowered DAG, so the simulated
//! attention busy time must match to the nanosecond (modulo the executor's
//! `SimDuration` round-up per kernel).

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin::baselines::{DoubleRingCp, LlamaCp, TeCp, Ulysses};
use zeppelin::core::analysis::analyze;
use zeppelin::core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin::core::zeppelin::Zeppelin;
use zeppelin::data::batch::{sample_batch, Batch};
use zeppelin::data::datasets::github;
use zeppelin::exec::step::{simulate_plan, StepConfig};
use zeppelin::model::config::llama_3b;
use zeppelin::sim::topology::cluster_a;

fn check(scheduler: &dyn Scheduler, batch: &Batch) {
    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let plan = scheduler.plan(batch, &ctx).expect("plan");
    let analysis = analyze(&plan, &model, &cluster);
    let report = simulate_plan(&plan, batch, &ctx, &StepConfig::default()).expect("simulate");
    // Per-kernel round-up to whole nanoseconds bounds the divergence by
    // 1 ns per kernel; a generous epsilon covers every batch here.
    for (rank, est) in analysis.ranks.iter().enumerate() {
        let simulated = report.forward_phase.attention[rank].as_secs_f64();
        let diff = (est.attn_secs - simulated).abs();
        assert!(
            diff < 5e-6,
            "{}: rank {rank} static {} vs simulated {}",
            plan.scheduler,
            est.attn_secs,
            simulated
        );
    }
    // The simulated forward phase can never beat the static critical path.
    assert!(
        report.layer_forward.as_secs_f64() >= analysis.attn_critical_secs * 0.999,
        "{}: forward {} below static bound {}",
        plan.scheduler,
        report.layer_forward.as_secs_f64(),
        analysis.attn_critical_secs
    );
}

#[test]
fn static_attention_matches_simulated_for_every_scheduler() {
    let mut rng = StdRng::seed_from_u64(17);
    let batch = sample_batch(&github(), &mut rng, 65_536);
    check(&TeCp::new(), &batch);
    check(&LlamaCp::new(), &batch);
    check(&DoubleRingCp::new(), &batch);
    check(&Ulysses::new(), &batch);
    check(&Zeppelin::new(), &batch);
}

#[test]
fn static_attention_matches_on_adversarial_batches() {
    for batch in [
        Batch::new(vec![65_536]),
        Batch::new(vec![1; 64]),
        Batch::new(vec![40_000, 1, 1, 1, 25_533]),
    ] {
        check(&Zeppelin::new(), &batch);
        check(&TeCp::new(), &batch);
    }
}

#[test]
fn analyzer_memory_check_agrees_with_scheduler_capacity() {
    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model).with_capacity(8_192);
    let mut rng = StdRng::seed_from_u64(3);
    let batch = sample_batch(&github(), &mut rng, 65_536);
    let plan = Zeppelin::new().plan(&batch, &ctx).expect("plan");
    let analysis = analyze(&plan, &model, &cluster);
    // The partitioner enforced capacity (+ fragment rounding slack).
    assert!(analysis.fits(ctx.capacity + 64));
}

//! Single-flight coalescing over real sockets: N connections fire the same
//! fresh plan key at the same instant, the leader's planner run is pinned
//! open with an injected stall, and the server's own ledger must show
//! exactly one planner invocation serving all N responses.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

use zeppelin::core::plan_io::{parse_json, Json};
use zeppelin::serve::{PlannerChaos, Server, ServerConfig};

const CONNS: usize = 8;

#[test]
fn concurrent_identical_keys_share_one_planner_run() {
    // The stall holds the leader inside its planner run long enough that
    // every other connection's request demonstrably arrives while the key
    // is in flight — without it, a microsecond planner run can finish
    // before the host scheduler lets a second worker observe the flight.
    let chaos = Arc::new(PlannerChaos::new());
    chaos.push_stall(300);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        chaos: Some(Arc::clone(&chaos)),
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve until shutdown"));

    // All connections are established and synchronized before any request
    // line is written, so the requests land as one burst.
    let gate = Barrier::new(CONNS);
    std::thread::scope(|scope| {
        for _ in 0..CONNS {
            let gate = &gate;
            scope.spawn(move || {
                let raw = TcpStream::connect(addr).expect("connect");
                let mut writer = raw.try_clone().expect("clone for writing");
                let mut reader = BufReader::new(raw);
                gate.wait();
                writeln!(writer, "{{\"op\":\"plan\",\"seqs\":[9000,500,2500]}}")
                    .expect("request sends");
                let mut reply = String::new();
                reader.read_line(&mut reply).expect("server answers");
                let v = parse_json(reply.trim()).expect("reply is JSON");
                assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{reply}");
                assert_ne!(
                    v.get("degraded"),
                    Some(&Json::Bool(true)),
                    "a coalesced response must carry the real plan: {reply}"
                );
            });
        }
    });
    assert_eq!(chaos.pending(), 0, "the leader consumed the stall");

    let mut ctl = TcpStream::connect(addr).expect("connect for shutdown");
    writeln!(ctl, "{{\"op\":\"shutdown\"}}").expect("shutdown sends");
    let mut reply = String::new();
    BufReader::new(ctl)
        .read_line(&mut reply)
        .expect("shutdown ack");
    assert!(reply.contains("shutting_down"), "{reply}");

    let report = handle.join().expect("server thread exits");
    let m = &report.metrics;
    assert_eq!(m.plan_requests, CONNS as u64, "every request was served");
    assert_eq!(
        m.planner_runs, 1,
        "one planner invocation serves the whole burst"
    );
    assert!(
        m.coalesced >= 1,
        "with the leader stalled 300ms, at least one follower must coalesce"
    );
    assert_eq!(
        m.cache_hits + m.coalesced,
        CONNS as u64 - 1,
        "every non-leader was served without planning: {} hits + {} coalesced",
        m.cache_hits,
        m.coalesced
    );
    assert_eq!(m.errors, 0, "no request errored");
    assert_eq!(m.worker_respawns, 0, "no worker died");
    assert_eq!(report.cached_plans, 1, "one canonical plan cached");
}

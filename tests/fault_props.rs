//! Property-based tests of deterministic fault injection: seeded schedules
//! replay identically, fault-free schedules leave the engine bit-exact, and
//! faults can only slow a workload down.

use proptest::prelude::*;

use zeppelin::sim::engine::{Simulator, Stream};
use zeppelin::sim::fault::FaultSchedule;
use zeppelin::sim::time::{SimDuration, SimTime};
use zeppelin::sim::topology::{tiny_cluster, ClusterSpec};

/// A randomized task description (compute + transfers, optional deps).
#[derive(Debug, Clone)]
enum Job {
    Compute { rank: usize, micros: u64 },
    Transfer { src: usize, dst: usize, mbytes: u64 },
}

type Spec = Vec<(Job, Vec<prop::sample::Index>)>;

fn jobs() -> impl Strategy<Value = Spec> {
    let job = prop_oneof![
        (0usize..8, 1u64..500).prop_map(|(rank, micros)| Job::Compute { rank, micros }),
        (0usize..8, 0usize..8, 1u64..200).prop_filter_map("distinct endpoints", |(s, d, m)| {
            (s != d).then_some(Job::Transfer {
                src: s,
                dst: d,
                mbytes: m,
            })
        }),
    ];
    prop::collection::vec(
        (
            job,
            prop::collection::vec(any::<prop::sample::Index>(), 0..3),
        ),
        1..40,
    )
}

fn build(cluster: &ClusterSpec, spec: &Spec) -> Simulator {
    let mut sim = Simulator::new(cluster);
    let mut ids = Vec::new();
    for (job, dep_idx) in spec {
        let deps: Vec<_> = if ids.is_empty() {
            vec![]
        } else {
            let mut d: Vec<_> = dep_idx.iter().map(|ix| *ix.get(&ids)).collect();
            d.sort_unstable();
            d.dedup();
            d
        };
        let id = match job {
            Job::Compute { rank, micros } => sim
                .compute(
                    *rank,
                    Stream::Compute,
                    SimDuration::from_micros(*micros),
                    deps,
                    None,
                )
                .unwrap(),
            Job::Transfer { src, dst, mbytes } => sim
                .transfer(
                    *mbytes as f64 * 1e6,
                    cluster.direct_path(*src, *dst),
                    deps,
                    None,
                )
                .unwrap(),
        };
        ids.push(id);
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `FaultSchedule::random` is a pure function of its seed, and running
    /// the same schedule over the same DAG twice yields the identical
    /// report — same makespan, same spans — or the identical typed error.
    #[test]
    fn seeded_fault_runs_replay_identically(spec in jobs(), seed in any::<u64>()) {
        let cluster = tiny_cluster(2, 4);
        let horizon = SimTime::from_nanos(2_000_000); // 2 ms: mid-workload
        let faults_a = FaultSchedule::random(seed, &cluster, horizon);
        let faults_b = FaultSchedule::random(seed, &cluster, horizon);
        prop_assert_eq!(&faults_a, &faults_b, "schedule generation not seeded");

        let sim = build(&cluster, &spec);
        match (sim.run_with_faults(&faults_a), sim.run_with_faults(&faults_b)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.makespan, b.makespan, "makespan diverged");
                prop_assert_eq!(a.spans, b.spans, "spans diverged");
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "errors diverged"),
            (a, b) => prop_assert!(false, "outcomes diverged: {a:?} vs {b:?}"),
        }
    }

    /// An empty schedule is exactly the plain `run()`: fault plumbing off
    /// the fault path is bit-free.
    #[test]
    fn empty_schedule_is_bit_identical_to_plain_run(spec in jobs()) {
        let cluster = tiny_cluster(2, 4);
        let sim = build(&cluster, &spec);
        let plain = sim.run().unwrap();
        let faulted = sim.run_with_faults(&FaultSchedule::new()).unwrap();
        prop_assert_eq!(plain.makespan, faulted.makespan);
        prop_assert_eq!(plain.spans, faulted.spans);
    }

    /// Slowdowns and degradations never speed a workload up.
    #[test]
    fn degradation_never_shrinks_the_makespan(
        spec in jobs(),
        rank in 0usize..8,
        nic in 0usize..8,
        speed_pct in 10u64..100,
        nic_pct in 10u64..100,
    ) {
        let cluster = tiny_cluster(2, 4);
        let sim = build(&cluster, &spec);
        let healthy = sim.run().unwrap();
        let faults = FaultSchedule::new()
            .gpu_slowdown(rank, speed_pct as f64 / 100.0, SimTime::ZERO, None)
            .nic_degrade(nic, nic_pct as f64 / 100.0, SimTime::ZERO, None);
        let degraded = sim.run_with_faults(&faults).unwrap();
        prop_assert!(
            degraded.makespan >= healthy.makespan,
            "degraded {} < healthy {}",
            degraded.makespan,
            healthy.makespan
        );
    }
}

//! Property tests for heterogeneity-aware scheduling: random per-rank
//! speed vectors × random workloads × every registry scheduler must plan
//! auditably and conserve tokens; uniform speeds must be invisible
//! (weighted chunking bit-identical to the unweighted cut); per-node
//! speed tiers must survive elastic shrink→grow round trips.
//!
//! Honors `PROPTEST_CASES` like the other property suites; CI runs this
//! file in the deep sweep.

use proptest::prelude::*;

use zeppelin::baselines::{scheduler_by_name, SCHEDULER_NAMES};
use zeppelin::core::chunking::{chunks, chunks_weighted, chunks_with_weights};
use zeppelin::core::scheduler::SchedulerCtx;
use zeppelin::core::validate::{report, validate_with_batch};
use zeppelin::data::batch::Batch;
use zeppelin::exec::step::{simulate_step, StepConfig};
use zeppelin::model::config::llama_3b;
use zeppelin::sim::topology::cluster_a;

fn arb_lens() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(64u64..8_000, 1..10)
}

/// Speeds in (0, 1], quantization-friendly (multiples of 1/1024).
fn arb_speeds(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1u32..=1024, n)
        .prop_map(|qs| qs.into_iter().map(|q| f64::from(q) / 1024.0).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every registry scheduler, planning with an arbitrary speed vector
    /// in the context, produces a plan that audits clean and conserves
    /// the batch's tokens.
    #[test]
    fn heterogeneous_plans_audit_clean_and_conserve_tokens(
        lens in arb_lens(),
        speed in arb_speeds(16),
    ) {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b())
            .with_capacity(16_384)
            .with_rank_speed(speed.clone());
        let batch = Batch::new(lens.clone());
        for name in SCHEDULER_NAMES {
            let s = scheduler_by_name(name).expect("registry name");
            if let Ok(plan) = s.plan(&batch, &ctx) {
                let audit = validate_with_batch(&plan, &ctx, &batch);
                prop_assert!(
                    audit.is_ok(),
                    "{name} on {lens:?} with speeds {speed:?}: {}",
                    audit.err().map(|v| report(&v)).unwrap_or_default()
                );
                prop_assert_eq!(plan.total_tokens(), batch.total_tokens(), "{}", name);
            }
        }
    }

    /// The heterogeneity-aware schedulers survive the full pipeline —
    /// plan, audit, lower, simulate — with the same speeds in the
    /// executor's physics.
    #[test]
    fn hetero_schedulers_simulate_clean_under_random_speeds(
        lens in arb_lens(),
        speed in arb_speeds(16),
    ) {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b())
            .with_capacity(16_384)
            .with_rank_speed(speed.clone());
        let batch = Batch::new(lens.clone());
        let mut cfg = StepConfig::default();
        cfg.exec.rank_speed = speed.clone();
        for name in ["zeppelin-het", "straggler-remap"] {
            let s = scheduler_by_name(name).expect("registry name");
            let r = simulate_step(s.as_ref(), &batch, &ctx, &cfg);
            prop_assert!(
                r.is_ok(),
                "{} on {:?} with speeds {:?}: {:?}",
                name, lens, speed, r.err()
            );
            prop_assert!(r.unwrap().throughput > 0.0);
        }
    }

    /// Uniform speeds are invisible: the weighted cut must be
    /// bit-identical to the unweighted one, whatever the common speed.
    #[test]
    fn uniform_speeds_leave_chunking_bit_identical(
        len in 0u64..200_000,
        g in 1usize..64,
        q in 1u32..=4096,
    ) {
        let s = f64::from(q) / 1024.0;
        prop_assert_eq!(chunks_weighted(len, g, &vec![s; g]), chunks(len, g));
        prop_assert_eq!(chunks_with_weights(len, g, &vec![q; g]), chunks(len, g));
        prop_assert_eq!(chunks_with_weights(len, g, &[]), chunks(len, g));
    }

    /// Per-node speed tiers survive an elastic shrink (node eviction)
    /// followed by a grow back to the original size: survivors keep their
    /// tiers, rejoining nodes arrive at 1.0, and the context's rank_speed
    /// stays consistent with the cluster's tiers throughout.
    #[test]
    fn node_tiers_survive_shrink_grow_round_trips(
        tiers in arb_speeds(4),
        dead_node in 0usize..4,
    ) {
        let nodes = tiers.len();
        let cluster = cluster_a(nodes).with_node_tiers(tiers.clone());
        let ctx = SchedulerCtx::new(&cluster, &llama_3b());
        prop_assert_eq!(ctx.rank_speed.clone(), cluster.rank_speeds());

        let dead_node = dead_node % nodes;
        if nodes == 1 {
            return Ok(()); // nothing can die and still leave a cluster
        }
        let dead_rank = dead_node * cluster.node.gpus_per_node;
        let (shrunk, _) = ctx.shrink_to_survivors(&[dead_rank]).expect("survivors");
        let surviving: Vec<f64> = (0..nodes)
            .filter(|&n| n != dead_node)
            .map(|n| tiers[n])
            .collect();
        prop_assert_eq!(&shrunk.cluster.node_tiers, &surviving);
        prop_assert_eq!(shrunk.rank_speed.clone(), shrunk.cluster.rank_speeds());

        let grown = shrunk.grow_to_nodes(nodes).expect("grow back");
        let mut expect = surviving;
        expect.resize(nodes, 1.0);
        prop_assert_eq!(&grown.cluster.node_tiers, &expect);
        prop_assert_eq!(grown.rank_speed.clone(), grown.cluster.rank_speeds());
    }
}

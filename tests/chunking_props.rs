//! Property-based tests of the zigzag chunk math that all ring cost
//! accounting rests on.

use proptest::prelude::*;

use zeppelin::core::chunking::{
    chunks, kv_source, position_pair_flops, position_tokens, position_total_flops,
    ring_round_flops, ring_round_kv_tokens,
};
use zeppelin::model::config::llama_3b;
use zeppelin::model::flops::attention_seq_flops;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chunks_partition_any_sequence(len in 0u64..200_000, g in 1usize..64) {
        let cs = chunks(len, g);
        prop_assert_eq!(cs.len(), 2 * g);
        prop_assert_eq!(cs.iter().map(|c| c.len).sum::<u64>(), len);
        let mut offset = 0;
        for c in &cs {
            prop_assert_eq!(c.offset, offset);
            offset += c.len;
        }
        // Sizes within one token of each other.
        let max = cs.iter().map(|c| c.len).max().unwrap();
        let min = cs.iter().map(|c| c.len).min().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn position_tokens_sum_to_len(len in 0u64..200_000, g in 1usize..48) {
        let total: u64 = (0..g).map(|p| position_tokens(len, g, p)).sum();
        prop_assert_eq!(total, len);
    }

    #[test]
    fn ring_rounds_conserve_flops(len in 1u64..50_000, g in 1usize..24) {
        let cfg = llama_3b();
        let total: f64 = (0..g)
            .flat_map(|p| (0..g).map(move |r| (p, r)))
            .map(|(p, r)| ring_round_flops(&cfg, len, g, p, r))
            .sum();
        let expected = attention_seq_flops(&cfg, len);
        prop_assert!((total - expected).abs() <= expected * 1e-9 + 1.0);
    }

    #[test]
    fn pairwise_flops_cover_the_grid_once(len in 1u64..50_000, g in 1usize..16) {
        // Summing position_pair_flops over all (q, kv) pairs must equal the
        // per-round decomposition (both enumerate each pair exactly once).
        let cfg = llama_3b();
        let by_pairs: f64 = (0..g)
            .flat_map(|q| (0..g).map(move |kv| (q, kv)))
            .map(|(q, kv)| position_pair_flops(&cfg, len, g, q, kv))
            .sum();
        let by_rounds: f64 = (0..g)
            .flat_map(|p| (0..g).map(move |r| (p, r)))
            .map(|(p, r)| ring_round_flops(&cfg, len, g, p, r))
            .sum();
        prop_assert!((by_pairs - by_rounds).abs() <= by_pairs * 1e-12 + 1.0);
    }

    #[test]
    fn zigzag_positions_balance_within_rounding(len in 4_096u64..200_000, g in 2usize..32) {
        let cfg = llama_3b();
        let per: Vec<f64> = (0..g)
            .map(|p| position_total_flops(&cfg, len, g, p))
            .collect();
        let max = per.iter().cloned().fold(0.0f64, f64::max);
        let min = per.iter().cloned().fold(f64::INFINITY, f64::min);
        // Long sequences balance tightly; short ones are rounding-bound.
        let tolerance = if len as usize > 64 * g { 0.05 } else { 0.8 };
        prop_assert!(
            (max - min) / max <= tolerance,
            "imbalance {} at len {} g {}", (max - min) / max, len, g
        );
    }

    #[test]
    fn kv_rotation_is_a_permutation_every_round(g in 1usize..64, r in 0usize..64) {
        prop_assume!(r < g);
        let mut seen: Vec<usize> = (0..g).map(|p| kv_source(g, p, r)).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..g).collect::<Vec<_>>());
    }

    #[test]
    fn in_flight_kv_covers_the_sequence(len in 0u64..100_000, g in 1usize..24, r in 0usize..24) {
        prop_assume!(r < g);
        let total: u64 = (0..g).map(|p| ring_round_kv_tokens(len, g, p, r)).sum();
        prop_assert_eq!(total, len);
    }
}

//! Property tests for the canonicalizing plan cache: a cached hit must be
//! indistinguishable from planning the requesting batch directly, for every
//! scheduler the service can name, and elastic events must invalidate it.

use proptest::prelude::*;

use zeppelin::core::scheduler::SchedulerCtx;
use zeppelin::core::zeppelin::Zeppelin;
use zeppelin::data::batch::Batch;
use zeppelin::model::config::llama_3b;
use zeppelin::serve::registry::{scheduler_by_name, SCHEDULER_NAMES};
use zeppelin::serve::{
    is_index_faithful, CachedPlan, CanonicalBatch, FlightOutcome, FlightTable, Join, PlanCache,
    PlanKey, ShardedPlanCache,
};
use zeppelin::sim::topology::cluster_a;

use std::sync::Arc;

fn ctx() -> SchedulerCtx {
    SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192)
}

fn arb_lens() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(64u64..6000, 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serving through a cold cache equals direct planning, scheduler by
    /// scheduler: strict plan equality when the plan references real
    /// sequences, canonical-batch equality for synthetic-id plans
    /// (packing windows), and error-for-error otherwise.
    #[test]
    fn cold_cache_matches_direct_planning(lens in arb_lens()) {
        let ctx = ctx();
        let batch = Batch::new(lens);
        for name in SCHEDULER_NAMES {
            let scheduler = scheduler_by_name(name).unwrap();
            let mut cache = PlanCache::new(8);
            let direct = scheduler.plan(&batch, &ctx);
            let served = cache.get_or_plan(scheduler.as_ref(), &batch, &ctx);
            match (direct, served) {
                (Ok(direct), Ok((plan, hit))) => {
                    prop_assert!(!hit, "{name}: first request cannot hit");
                    if is_index_faithful(&plan, &batch.seqs) {
                        prop_assert_eq!(&*plan, &direct, "{}", name);
                    } else {
                        let canonical = CanonicalBatch::new(&batch);
                        let canon = scheduler
                            .plan(&canonical.to_batch(), &ctx)
                            .expect("canonical multiset plans when the batch does");
                        prop_assert_eq!(&*plan, &canon, "{}", name);
                    }
                }
                (Err(_), Err(_)) => {} // consistent failure is fine
                (direct, served) => prop_assert!(
                    false,
                    "{name}: direct ok={} but served ok={}",
                    direct.is_ok(),
                    served.is_ok()
                ),
            }
        }
    }

    /// A permuted view of a cached shape hits, and the served plan still
    /// equals planning that permuted batch directly.
    #[test]
    fn permuted_views_hit_with_direct_equality(lens in arb_lens(), rot in 0usize..16) {
        let ctx = ctx();
        let batch = Batch::new(lens.clone());
        let mut rotated = lens;
        let n = rotated.len();
        rotated.rotate_left(rot % n);
        let rotated = Batch::new(rotated);
        for name in SCHEDULER_NAMES {
            let scheduler = scheduler_by_name(name).unwrap();
            let mut cache = PlanCache::new(8);
            if cache.get_or_plan(scheduler.as_ref(), &batch, &ctx).is_err() {
                continue; // over-capacity shapes cache nothing; nothing to test
            }
            let (plan, hit) = cache
                .get_or_plan(scheduler.as_ref(), &rotated, &ctx)
                .expect("same multiset plans again");
            prop_assert!(hit, "{name}: same multiset must hit");
            if is_index_faithful(&plan, &rotated.seqs) {
                let direct = scheduler.plan(&rotated, &ctx).expect("direct plan");
                prop_assert_eq!(&*plan, &direct, "{}", name);
            } else {
                let canonical = CanonicalBatch::new(&rotated);
                let canon = scheduler
                    .plan(&canonical.to_batch(), &ctx)
                    .expect("canonical plan");
                prop_assert_eq!(&*plan, &canon, "{}", name);
            }
        }
    }

    /// Elastic shrink invalidates: every pre-failure entry is purged under
    /// the survivor context, requests against it miss (and replan), and a
    /// purge with the same context is a no-op.
    #[test]
    fn shrink_to_survivors_invalidates_cached_plans(
        lens in arb_lens(),
        dead_rank in 0usize..16,
    ) {
        let ctx = ctx();
        let batch = Batch::new(lens);
        let z = Zeppelin::new();
        let mut cache = PlanCache::new(8);
        cache.get_or_plan(&z, &batch, &ctx).expect("warm the cache");
        let warm = cache.len();
        prop_assert!(warm > 0);

        let (shrunk, _) = ctx.shrink_to_survivors(&[dead_rank]).expect("one node survives");
        prop_assert_eq!(cache.purge_stale(&shrunk), warm);
        prop_assert!(cache.is_empty());

        let (_, hit) = cache.get_or_plan(&z, &batch, &shrunk).expect("replan on survivors");
        prop_assert!(!hit, "post-shrink request must miss");
        prop_assert_eq!(cache.purge_stale(&shrunk), 0);
    }

    /// The server's sharded single-flight path is placement-identical to the
    /// unsharded cache, scheduler by scheduler: driving any request sequence
    /// (repeated shapes, permuted views, varying shard counts) through
    /// lookup → flight join → plan → publish serves exactly the plans — and
    /// the hit pattern — that the one-mutex cache serves, and both caches
    /// end the run holding the same number of entries.
    #[test]
    fn sharded_single_flight_matches_unsharded_placement(
        shapes in prop::collection::vec(arb_lens(), 1..5),
        picks in prop::collection::vec((0usize..5, 0usize..16), 1..20),
        shards in 1usize..9,
    ) {
        let ctx = ctx();
        for name in SCHEDULER_NAMES {
            let scheduler = scheduler_by_name(name).unwrap();
            let mut unsharded = PlanCache::new(64);
            let sharded = ShardedPlanCache::new(64, shards);
            let flights = FlightTable::new();
            for &(s, rot) in &picks {
                let mut lens = shapes[s % shapes.len()].clone();
                let n = lens.len();
                lens.rotate_left(rot % n);
                let batch = Batch::new(lens);

                let reference = unsharded.get_or_plan(scheduler.as_ref(), &batch, &ctx);

                // The serve path: sharded lookup, then single-flight join
                // (sequential driver, so joins always lead), plan, publish
                // to the cache before completing the flight.
                let (key, canonical) = PlanKey::new(scheduler.name(), &batch, &ctx);
                let served = match sharded.lookup(&key) {
                    Some(cached) => Ok((cached.materialize(&canonical), true)),
                    None => match flights.join(&key) {
                        Join::Leader(guard) => match scheduler.plan(&canonical.to_batch(), &ctx) {
                            Ok(plan) => {
                                let cached = Arc::new(CachedPlan::new(plan, &canonical.lens));
                                sharded.insert(key, Arc::clone(&cached));
                                guard.complete(FlightOutcome::Planned(Arc::clone(&cached)));
                                Ok((cached.materialize(&canonical), false))
                            }
                            Err(e) => Err(e),
                        },
                        Join::Follower(_) => unreachable!("sequential driver always leads"),
                    },
                };

                match (reference, served) {
                    (Ok((want, want_hit)), Ok((got, got_hit))) => {
                        prop_assert_eq!(want_hit, got_hit, "{}: hit pattern diverged", name);
                        prop_assert_eq!(&*want, &*got, "{}: served plan diverged", name);
                    }
                    (Err(_), Err(_)) => {} // consistent failure is fine
                    (reference, served) => prop_assert!(
                        false,
                        "{name}: unsharded ok={} but sharded ok={}",
                        reference.is_ok(),
                        served.is_ok()
                    ),
                }
            }
            prop_assert_eq!(unsharded.len(), sharded.len(), "{}: entry counts diverged", name);
            prop_assert!(flights.is_empty(), "{name}: a flight leaked past its request");
        }
    }
}

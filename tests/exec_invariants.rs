//! Cross-crate physical invariants of the executor: FLOP conservation,
//! remap balancing, and comparative behaviour that must hold for any
//! correct lowering.

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin::baselines::{DoubleRingCp, TeCp, Ulysses};
use zeppelin::core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin::core::zeppelin::{Zeppelin, ZeppelinConfig};
use zeppelin::data::batch::{sample_batch, Batch};
use zeppelin::data::datasets::arxiv;
use zeppelin::exec::step::{simulate_step, StepConfig};
use zeppelin::model::config::llama_3b;
use zeppelin::model::flops::attention_seq_flops;
use zeppelin::model::kernel::KernelModel;
use zeppelin::sim::time::SimDuration;
use zeppelin::sim::topology::cluster_a;

fn mixed_batch() -> Batch {
    Batch::new(vec![
        30_000, 9_000, 6_000, 5_000, 4_000, 3_000, 2_000, 1_500, 1_200, 1_000, 800, 500, 400, 300,
        200, 636,
    ])
}

/// Total attention busy time must be at least the ideal FLOP time; the
/// excess is launch overhead and granularity loss, which must stay bounded
/// for every distributed method (packing excluded: it changes the FLOPs).
#[test]
fn attention_busy_time_matches_flop_accounting() {
    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let cfg = StepConfig::default();
    let batch = mixed_batch();
    let kernel = KernelModel::attention();
    let ideal_secs: f64 = batch
        .seqs
        .iter()
        .map(|&s| attention_seq_flops(&model, s))
        .sum::<f64>()
        / (cluster.node.gpu.peak_flops * kernel.max_efficiency);

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(TeCp::new()),
        Box::new(Ulysses::new()),
        Box::new(DoubleRingCp::new()),
        Box::new(Zeppelin::new()),
    ];
    for s in schedulers {
        let report = simulate_step(s.as_ref(), &batch, &ctx, &cfg).unwrap();
        let busy: f64 = report
            .forward_phase
            .attention
            .iter()
            .map(|d| d.as_secs_f64())
            .sum();
        assert!(
            busy >= ideal_secs * 0.999,
            "{}: busy {busy} below ideal {ideal_secs}",
            s.name()
        );
        assert!(
            busy <= ideal_secs * 1.5,
            "{}: busy {busy} vastly exceeds ideal {ideal_secs} — overhead bug?",
            s.name()
        );
    }
}

/// With remapping on, per-rank linear busy time must be flat; without it,
/// the attention-optimal layout leaves it ragged.
#[test]
fn remapping_flattens_linear_phase() {
    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let cfg = StepConfig::default();
    // A skewed batch: one giant local-ish sequence plus dust.
    let batch = Batch::new(vec![24_000, 600, 500, 400, 300, 200, 1_000, 5_000, 32_536]);
    let spread = |remapping: bool| {
        let z = Zeppelin::with_config(ZeppelinConfig {
            routing: true,
            remapping,
        });
        let r = simulate_step(&z, &batch, &ctx, &cfg).unwrap();
        let v = &r.forward_phase.linear;
        let max = v.iter().max().copied().unwrap_or(SimDuration::ZERO);
        let min = v.iter().min().copied().unwrap_or(SimDuration::ZERO);
        (max.as_secs_f64(), min.as_secs_f64())
    };
    let (max_on, min_on) = spread(true);
    let (max_off, min_off) = spread(false);
    let ratio_on = max_on / min_on.max(1e-12);
    let ratio_off = max_off / min_off.max(1e-12);
    assert!(
        ratio_on < ratio_off,
        "remap on ratio {ratio_on} vs off {ratio_off}"
    );
    assert!(ratio_on < 1.2, "linear still imbalanced: {ratio_on}");
}

/// Backward communication doubles forward's; comm busy time must reflect it.
#[test]
fn backward_comm_scales_with_multiplier() {
    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let batch = Batch::new(vec![65_536]);
    let r = simulate_step(&TeCp::new(), &batch, &ctx, &StepConfig::default()).unwrap();
    let fwd: f64 = r.forward_phase.comm.iter().map(|d| d.as_secs_f64()).sum();
    let bwd: f64 = r.backward_phase.comm.iter().map(|d| d.as_secs_f64()).sum();
    let ratio = bwd / fwd;
    assert!((1.8..2.2).contains(&ratio), "comm ratio {ratio}");
}

/// Zone-hinted partitioning must never be slower than the capacity-only
/// variant by more than noise on a realistic batch (it exists to help).
#[test]
fn zone_hints_pay_for_themselves_on_average() {
    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let cfg = StepConfig::default();
    let mut rng = StdRng::seed_from_u64(31);
    let mut hinted_total = 0.0;
    let mut te_total = 0.0;
    for _ in 0..4 {
        let batch = sample_batch(&arxiv(), &mut rng, 65_536);
        hinted_total += simulate_step(&Zeppelin::new(), &batch, &ctx, &cfg)
            .unwrap()
            .throughput;
        te_total += simulate_step(&TeCp::new(), &batch, &ctx, &cfg)
            .unwrap()
            .throughput;
    }
    assert!(hinted_total > 1.5 * te_total);
}

/// JSON reports for a full step must be well-formed and reflect the run.
#[test]
fn json_report_round_trip_sanity() {
    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let r = simulate_step(
        &Zeppelin::new(),
        &mixed_batch(),
        &ctx,
        &StepConfig::default(),
    )
    .unwrap();
    let json = zeppelin::exec::report::step_report_json(&r);
    assert!(zeppelin::exec::report::looks_like_json(&json));
    assert!(json.contains("\"scheduler\":\"Zeppelin\""));
    assert!(json.contains(&format!("\"tokens\":{}", r.tokens)));
}

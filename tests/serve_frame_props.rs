//! Property tests for the bounded, resynchronizing frame reader under
//! adversarial writes (DESIGN.md §11).
//!
//! The framing layer is the first trust boundary of the serving front-end:
//! every byte it sees comes from an untrusted socket. These properties feed
//! [`FrameReader`] streams chunked at arbitrary byte boundaries, interleaved
//! with `WouldBlock` timeouts, spiked with oversized lines, truncated
//! mid-frame, or made of outright garbage — and assert the reader's
//! contract: honest lines are recovered exactly and in order, every failure
//! is a *typed* [`FrameError`], oversized frames resynchronize at the next
//! newline, and nothing panics or loops forever. A final property pushes
//! recovered garbage lines through [`parse_request`] to check the next
//! layer stays typed too.

use std::io::Read;

use proptest::prelude::*;

use zeppelin::serve::frame::{Frame, FrameError, FrameReader};
use zeppelin::serve::protocol::parse_request;

/// A reader that serves `data` in caller-chosen chunk sizes, optionally
/// injecting a `WouldBlock` tick before each chunk — the loopback model of
/// a socket with a read timeout under a client that writes in fragments.
struct AdversarialReader {
    data: Vec<u8>,
    pos: usize,
    /// Cycled-through chunk sizes (each ≥ 1).
    chunks: Vec<usize>,
    chunk_idx: usize,
    /// Cycled-through "tick before this chunk?" flags.
    ticks: Vec<bool>,
    tick_idx: usize,
    /// Set while the pending tick for the current chunk has not fired yet.
    tick_pending: bool,
}

impl AdversarialReader {
    fn new(data: Vec<u8>, chunks: Vec<usize>, ticks: Vec<bool>) -> AdversarialReader {
        AdversarialReader {
            data,
            pos: 0,
            chunks: if chunks.is_empty() { vec![1] } else { chunks },
            chunk_idx: 0,
            ticks: if ticks.is_empty() { vec![false] } else { ticks },
            tick_idx: 0,
            tick_pending: true,
        }
    }
}

impl Read for AdversarialReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        if self.tick_pending {
            self.tick_pending = false;
            let tick = self.ticks[self.tick_idx % self.ticks.len()];
            self.tick_idx += 1;
            if tick {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "injected tick",
                ));
            }
        }
        let want = self.chunks[self.chunk_idx % self.chunks.len()].max(1);
        self.chunk_idx += 1;
        self.tick_pending = true;
        let n = want.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Drains a reader to `Eof`, collecting every non-timeout result. The
/// iteration bound converts a livelock into a test failure instead of a
/// hang.
fn drain<R: Read>(mut reader: FrameReader<R>, bound: usize) -> Vec<Result<Frame, FrameError>> {
    let mut out = Vec::new();
    for _ in 0..bound {
        match reader.read_frame(None) {
            Err(FrameError::TimedOut { .. }) => continue,
            other => {
                let eof = matches!(other, Ok(Frame::Eof));
                out.push(other);
                if eof {
                    return out;
                }
            }
        }
    }
    panic!("FrameReader did not reach Eof within {bound} iterations");
}

/// Bytes of one honest line: printable ASCII, so no `\n`, no `\r`, and no
/// lossy UTF-8 replacement to complicate the exact-recovery assertion.
fn arb_line() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(32u8..127, 0..48)
}

fn arb_lines() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(arb_line(), 1..8)
}

/// Chunk sizes from 1 (pure byte dribble) to bigger-than-most-frames.
fn arb_chunks() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..64, 1..8)
}

fn arb_ticks() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 1..8)
}

fn encode(lines: &[Vec<u8>]) -> Vec<u8> {
    let mut data = Vec::new();
    for line in lines {
        data.extend_from_slice(line);
        data.push(b'\n');
    }
    data
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chunking transparency: however a client fragments its writes, and
    /// however many read timeouts interleave, the frames that come out are
    /// exactly the lines that went in, in order, then a clean `Eof`.
    #[test]
    fn arbitrary_chunking_recovers_every_line_in_order(
        lines in arb_lines(),
        chunks in arb_chunks(),
        ticks in arb_ticks(),
    ) {
        let data = encode(&lines);
        let bound = data.len() * 4 + 64;
        let reader = FrameReader::new(AdversarialReader::new(data, chunks, ticks));
        let out = drain(reader, bound);
        prop_assert_eq!(out.len(), lines.len() + 1);
        for (got, want) in out.iter().zip(&lines) {
            let expect = String::from_utf8(want.clone()).unwrap();
            prop_assert_eq!(got, &Ok(Frame::Line(expect)));
        }
        prop_assert_eq!(out.last(), Some(&Ok(Frame::Eof)));
    }

    /// Oversized frames are typed and survivable: one line over the cap
    /// yields exactly one `Oversized` error accounting for every discarded
    /// byte, and the honest lines around it are recovered untouched.
    #[test]
    fn oversized_lines_resynchronize_without_losing_neighbors(
        lines in arb_lines(),
        insert_at in any::<prop::sample::Index>(),
        oversize_by in 1usize..96,
        chunks in arb_chunks(),
        ticks in arb_ticks(),
    ) {
        const CAP: usize = 32;
        let lines: Vec<Vec<u8>> = lines
            .into_iter()
            .map(|l| l.into_iter().take(CAP).collect())
            .collect();
        let idx = insert_at.index(lines.len() + 1);
        let big = vec![b'x'; CAP + oversize_by];
        let mut spiked = lines.clone();
        spiked.insert(idx, big.clone());

        let data = encode(&spiked);
        let bound = data.len() * 4 + 64;
        let reader = FrameReader::with_max_frame(
            AdversarialReader::new(data, chunks, ticks),
            CAP,
        );
        let out = drain(reader, bound);
        prop_assert_eq!(out.len(), spiked.len() + 1);
        prop_assert_eq!(
            &out[idx],
            &Err(FrameError::Oversized { discarded: big.len() + 1 }),
            "the spike resolves typed with full byte accounting"
        );
        for (i, want) in spiked.iter().enumerate() {
            if i == idx {
                continue;
            }
            let expect = String::from_utf8(want.clone()).unwrap();
            prop_assert_eq!(&out[i], &Ok(Frame::Line(expect)));
        }
        prop_assert_eq!(out.last(), Some(&Ok(Frame::Eof)));
    }

    /// A peer that vanishes mid-frame: complete lines are recovered, the
    /// dangling tail is a typed `Truncated` with exact byte accounting, and
    /// the stream then ends cleanly.
    #[test]
    fn truncated_tails_are_typed_then_eof(
        lines in arb_lines(),
        tail in prop::collection::vec(32u8..127, 1..48),
        chunks in arb_chunks(),
        ticks in arb_ticks(),
    ) {
        let mut data = encode(&lines);
        data.extend_from_slice(&tail);
        let bound = data.len() * 4 + 64;
        let reader = FrameReader::new(AdversarialReader::new(data, chunks, ticks));
        let out = drain(reader, bound);
        prop_assert_eq!(out.len(), lines.len() + 2);
        for (got, want) in out.iter().zip(&lines) {
            let expect = String::from_utf8(want.clone()).unwrap();
            prop_assert_eq!(got, &Ok(Frame::Line(expect)));
        }
        prop_assert_eq!(
            &out[lines.len()],
            &Err(FrameError::Truncated { partial: tail.len() })
        );
        prop_assert_eq!(out.last(), Some(&Ok(Frame::Eof)));
    }

    /// Garbage totality: arbitrary bytes — newlines anywhere, invalid
    /// UTF-8, lines straddling the cap — never panic, never livelock, and
    /// resolve into only the typed outcomes the server knows how to answer.
    /// Whatever garbage *does* frame as a line is then handed to
    /// `parse_request`, which must return a typed verdict too.
    #[test]
    fn arbitrary_garbage_resolves_typed_and_terminates(
        data in prop::collection::vec(0u8..=255, 0..256),
        chunks in arb_chunks(),
        ticks in arb_ticks(),
    ) {
        const CAP: usize = 16;
        let newlines = data.iter().filter(|&&b| b == b'\n').count();
        let bound = data.len() * 4 + 64;
        let reader = FrameReader::with_max_frame(
            AdversarialReader::new(data, chunks, ticks),
            CAP,
        );
        let out = drain(reader, bound);

        let mut completed = 0usize;
        for (i, result) in out.iter().enumerate() {
            match result {
                Ok(Frame::Line(s)) => {
                    completed += 1;
                    prop_assert!(
                        s.len() <= CAP + 2 * 3,
                        "framed lines respect the cap (± lossy replacement): {s:?}"
                    );
                    // The next trust boundary stays typed on garbage too:
                    // parse_request returns Ok or a named error, no panic.
                    let _ = parse_request(s);
                }
                Err(FrameError::Oversized { discarded }) => {
                    prop_assert!(*discarded > CAP, "oversized implies over the cap");
                }
                Err(FrameError::Truncated { partial }) => {
                    prop_assert!(*partial > 0);
                    prop_assert_eq!(
                        i + 2,
                        out.len(),
                        "a truncation can only be the last event before Eof"
                    );
                }
                Ok(Frame::Eof) => prop_assert_eq!(i + 1, out.len(), "Eof is terminal"),
                Err(e) => return Err(TestCaseError::fail(format!("untyped outcome: {e:?}"))),
            }
        }
        prop_assert!(
            completed <= newlines,
            "every framed line consumed one of the stream's newlines"
        );
        prop_assert_eq!(out.last(), Some(&Ok(Frame::Eof)));
    }

    /// Wire round-trip: any well-formed plan request survives
    /// serialization, framing, and re-parsing bit-for-bit — so the framing
    /// layer cannot corrupt honest traffic while defending against
    /// dishonest traffic.
    #[test]
    fn plan_requests_round_trip_through_the_frame_layer(
        seqs in prop::collection::vec(1u64..1_000_000, 1..16),
        nodes in 1usize..64,
        deadline_ms in 1u64..100_000,
        with_nodes in any::<bool>(),
        with_deadline in any::<bool>(),
        chunks in arb_chunks(),
        ticks in arb_ticks(),
    ) {
        let req = zeppelin::serve::protocol::Request::Plan {
            seqs,
            method: None,
            model: None,
            cluster: None,
            nodes: with_nodes.then_some(nodes),
            deadline_ms: with_deadline.then_some(deadline_ms),
        };
        let mut data = req.to_line().into_bytes();
        data.push(b'\n');
        let bound = data.len() * 4 + 64;
        let reader = FrameReader::new(AdversarialReader::new(data, chunks, ticks));
        let out = drain(reader, bound);
        prop_assert_eq!(out.len(), 2);
        let Ok(Frame::Line(line)) = &out[0] else {
            return Err(TestCaseError::fail(format!("expected a line, got {:?}", out[0])));
        };
        prop_assert_eq!(parse_request(line).unwrap(), req);
    }
}

//! Property-based tests of the hierarchical partitioner and the plan IR:
//! conservation, capacity, zone consistency, and determinism on random
//! batches and cluster shapes.

use proptest::prelude::*;

use zeppelin::core::partitioner::{partition, PartitionConfig};
use zeppelin::core::plan::{IterationPlan, PlanOptions, Zone};

fn as_plan(placements: Vec<zeppelin::core::plan::SeqPlacement>) -> IterationPlan {
    IterationPlan {
        scheduler: "prop".into(),
        placements,
        options: PlanOptions::default(),
        micro_batches: 1,
        redundant_attn_frac: 0.0,
    }
}

/// Strategy: a cluster shape and a batch that fits its total capacity.
fn shape_and_batch() -> impl Strategy<Value = (usize, usize, u64, Vec<u64>)> {
    (1usize..=4, 1usize..=8, 1024u64..=8192).prop_flat_map(|(nodes, p, cap)| {
        let total_cap = cap * (nodes * p) as u64;
        let max_seq = total_cap.min(4 * cap);
        (
            Just(nodes),
            Just(p),
            Just(cap),
            prop::collection::vec(1..=max_seq, 0..40)
                .prop_filter("batch must fit aggregate capacity", move |seqs| {
                    seqs.iter().sum::<u64>() <= total_cap
                }),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_token_is_placed_exactly_once((nodes, p, cap, seqs) in shape_and_batch()) {
        let cfg = PartitionConfig::new(nodes, p, cap);
        let part = partition(&seqs, &cfg).expect("feasible batch must partition");
        let mut seen: Vec<usize> = part.placements.iter().map(|pl| pl.seq_index).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..seqs.len()).collect::<Vec<_>>());
        for pl in &part.placements {
            prop_assert_eq!(pl.len, seqs[pl.seq_index]);
        }
        let plan = as_plan(part.placements);
        prop_assert_eq!(plan.total_tokens(), seqs.iter().sum::<u64>());
        plan.validate(nodes * p).expect("structurally valid");
    }

    #[test]
    fn per_rank_capacity_is_respected((nodes, p, cap, seqs) in shape_and_batch()) {
        let cfg = PartitionConfig::new(nodes, p, cap);
        let part = partition(&seqs, &cfg).expect("feasible");
        let plan = as_plan(part.placements);
        let tokens = plan.tokens_per_rank(nodes * p, 0);
        for (rank, &t) in tokens.iter().enumerate() {
            // Fragment rounding may exceed L by one token per placement on
            // the rank; allow a small additive slack.
            prop_assert!(
                t <= cap + 2 * seqs.len() as u64 + 2,
                "rank {} holds {} with capacity {}", rank, t, cap
            );
        }
    }

    #[test]
    fn zones_match_ring_spans((nodes, p, cap, seqs) in shape_and_batch()) {
        let cfg = PartitionConfig::new(nodes, p, cap);
        let part = partition(&seqs, &cfg).expect("feasible");
        for pl in &part.placements {
            let node_set: std::collections::HashSet<usize> =
                pl.ranks.iter().map(|r| r / p).collect();
            match pl.zone {
                Zone::Local => {
                    prop_assert_eq!(pl.ranks.len(), 1);
                }
                Zone::IntraNode => {
                    prop_assert!(pl.ranks.len() >= 2);
                    prop_assert_eq!(node_set.len(), 1);
                }
                Zone::InterNode => {
                    prop_assert!(node_set.len() >= 2);
                }
            }
        }
    }

    #[test]
    fn partitioning_is_deterministic((nodes, p, cap, seqs) in shape_and_batch()) {
        let cfg = PartitionConfig::new(nodes, p, cap);
        let a = partition(&seqs, &cfg).expect("feasible");
        let b = partition(&seqs, &cfg).expect("feasible");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn zone_hints_never_break_feasibility(
        (nodes, p, cap, seqs) in shape_and_batch(),
        s0 in 1u64..=16_384,
        s1 in 1u64..=65_536,
    ) {
        let cfg = PartitionConfig::new(nodes, p, cap).with_zone_hints(s0, s1.max(s0));
        let part = partition(&seqs, &cfg).expect("hints must not cause failure");
        let plan = as_plan(part.placements);
        plan.validate(nodes * p).expect("valid");
        prop_assert_eq!(plan.total_tokens(), seqs.iter().sum::<u64>());
    }

    #[test]
    fn over_capacity_batches_are_rejected(
        nodes in 1usize..=3,
        p in 1usize..=4,
        cap in 64u64..=512,
    ) {
        let total_cap = cap * (nodes * p) as u64;
        let seqs = vec![cap; (total_cap / cap + 2) as usize];
        let cfg = PartitionConfig::new(nodes, p, cap);
        prop_assert!(partition(&seqs, &cfg).is_err());
    }
}

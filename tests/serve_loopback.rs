//! Loopback smoke test for the serving front-end: bind an ephemeral port,
//! round-trip plan/stats/malformed requests over real sockets, then shut
//! down gracefully and audit the final report.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use zeppelin::core::plan_io::{parse_json, plan_from_json, Json};
use zeppelin::serve::protocol::Request;
use zeppelin::serve::{send_request, Server, ServerConfig};

fn plan_request(seqs: Vec<u64>) -> Request {
    Request::Plan {
        seqs,
        method: None,
        model: None,
        cluster: None,
        nodes: None,
    }
}

#[test]
fn loopback_plan_stats_shutdown_round_trip() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve until shutdown"));

    // First plan request: a miss carrying a parseable plan for the batch.
    let line = send_request(addr, &plan_request(vec![9000, 500, 2500])).expect("plan response");
    let v = parse_json(&line).expect("response is JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{line}");
    assert_eq!(v.get("cached"), Some(&Json::Bool(false)));
    let plan = plan_from_json(&v.get("plan").expect("plan payload").to_string())
        .expect("embedded plan parses");
    let planned: u64 = plan.placements.iter().map(|p| p.len).sum();
    assert_eq!(planned, 12_000, "placements cover every token");

    // Same multiset, different order: served from the cache.
    let line = send_request(addr, &plan_request(vec![500, 2500, 9000])).expect("plan response");
    let v = parse_json(&line).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(v.get("cached"), Some(&Json::Bool(true)));

    // A malformed request over a raw socket gets a typed error, and the
    // connection survives for the next request line.
    let mut raw = TcpStream::connect(addr).expect("connect");
    writeln!(raw, "{{\"op\":\"fly\"}}").unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = parse_json(line.trim()).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
    assert!(
        v.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unknown op"),
        "{line}"
    );
    writeln!(raw, "{{\"op\":\"stats\"}}").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(
        parse_json(line.trim()).unwrap().get("ok"),
        Some(&Json::Bool(true))
    );
    drop(reader);
    drop(raw);

    // Stats reflect everything above.
    let line = send_request(addr, &Request::Stats).expect("stats response");
    let stats = parse_json(&line).unwrap();
    let stats = stats.get("stats").expect("stats payload").clone();
    assert_eq!(stats.get("plan_requests").unwrap().as_u64(), Some(2));
    assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("errors").unwrap().as_u64(), Some(1));

    // Graceful shutdown: acknowledged, and the server thread drains out.
    let line = send_request(addr, &Request::Shutdown).expect("shutdown ack");
    let v = parse_json(&line).unwrap();
    assert_eq!(v.get("shutting_down"), Some(&Json::Bool(true)));
    let report = handle.join().expect("server thread exits");
    assert_eq!(report.metrics.plan_requests, 2);
    assert_eq!(report.metrics.cache_hits, 1);
    assert_eq!(report.metrics.errors, 1);
    assert_eq!(report.cached_plans, 1, "one canonical plan cached");

    // The port is closed after shutdown.
    assert!(send_request(addr, &Request::Stats).is_err());
}

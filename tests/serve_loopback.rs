//! Loopback smoke test for the serving front-end: bind an ephemeral port,
//! round-trip plan/stats/malformed requests over real sockets, then shut
//! down gracefully and audit the final report.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use zeppelin::core::plan_io::{parse_json, plan_from_json, plan_to_json, Json};
use zeppelin::serve::protocol::Request;
use zeppelin::serve::{send_request, Server, ServerConfig};

fn plan_request(seqs: Vec<u64>) -> Request {
    Request::plan(seqs)
}

#[test]
fn loopback_plan_stats_shutdown_round_trip() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve until shutdown"));

    // First plan request: a miss carrying a parseable plan for the batch.
    let line = send_request(addr, &plan_request(vec![9000, 500, 2500])).expect("plan response");
    let v = parse_json(&line).expect("response is JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{line}");
    assert_eq!(v.get("cached"), Some(&Json::Bool(false)));
    let plan = plan_from_json(&v.get("plan").expect("plan payload").to_string())
        .expect("embedded plan parses");
    let planned: u64 = plan.placements.iter().map(|p| p.len).sum();
    assert_eq!(planned, 12_000, "placements cover every token");

    // Same multiset, different order: served from the cache.
    let line = send_request(addr, &plan_request(vec![500, 2500, 9000])).expect("plan response");
    let v = parse_json(&line).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(v.get("cached"), Some(&Json::Bool(true)));

    // A malformed request over a raw socket gets a typed error, and the
    // connection survives for the next request line.
    let mut raw = TcpStream::connect(addr).expect("connect");
    writeln!(raw, "{{\"op\":\"fly\"}}").unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = parse_json(line.trim()).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
    assert!(
        v.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unknown op"),
        "{line}"
    );
    writeln!(raw, "{{\"op\":\"stats\"}}").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(
        parse_json(line.trim()).unwrap().get("ok"),
        Some(&Json::Bool(true))
    );
    drop(reader);
    drop(raw);

    // Stats reflect everything above.
    let line = send_request(addr, &Request::Stats).expect("stats response");
    let stats = parse_json(&line).unwrap();
    let stats = stats.get("stats").expect("stats payload").clone();
    assert_eq!(stats.get("plan_requests").unwrap().as_u64(), Some(2));
    assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("errors").unwrap().as_u64(), Some(1));

    // Graceful shutdown: acknowledged, and the server thread drains out.
    let line = send_request(addr, &Request::Shutdown).expect("shutdown ack");
    let v = parse_json(&line).unwrap();
    assert_eq!(v.get("shutting_down"), Some(&Json::Bool(true)));
    let report = handle.join().expect("server thread exits");
    assert_eq!(report.metrics.plan_requests, 2);
    assert_eq!(report.metrics.cache_hits, 1);
    assert_eq!(report.metrics.errors, 1);
    assert_eq!(report.cached_plans, 1, "one canonical plan cached");

    // The port is closed after shutdown.
    assert!(send_request(addr, &Request::Stats).is_err());
}

#[test]
fn hostile_requests_get_json_errors_and_workers_survive() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve until shutdown"));

    // Seed: one honest plan whose JSON the hostile cases below replay.
    let line = send_request(addr, &plan_request(vec![9000, 500, 2500])).expect("plan response");
    let v = parse_json(&line).expect("response is JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{line}");
    let plan_text = v.get("plan").expect("plan payload").to_string();
    let plan = plan_from_json(&plan_text).expect("embedded plan parses");

    // One connection rides through every hostile request: each must come
    // back as a line-delimited JSON error, never a dropped worker.
    let raw = TcpStream::connect(addr).expect("connect");
    let mut writer = raw.try_clone().expect("clone for writing");
    let mut reader = BufReader::new(raw);
    let mut reply = String::new();
    let mut ask = |writer: &mut TcpStream, reply: &mut String, line: &str| {
        writeln!(writer, "{line}").expect("request line sends");
        reply.clear();
        reader.read_line(reply).expect("server answers");
        parse_json(reply.trim()).expect("reply is JSON")
    };

    // Replaying the served plan through the audit verb comes back clean.
    let audit = Request::Audit {
        plan: plan_text.clone(),
    };
    let v = ask(&mut writer, &mut reply, &audit.to_line());
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{reply}");
    assert_eq!(v.get("violations").and_then(Json::as_u64), Some(0));

    // A tampered replay — rank 99 on the default 16-rank cluster — is
    // refused with a field-level report.
    let mut tampered = plan.clone();
    tampered.placements[0].ranks[0] = 99;
    let audit = Request::Audit {
        plan: plan_to_json(&tampered),
    };
    let v = ask(&mut writer, &mut reply, &audit.to_line());
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{reply}");
    assert!(
        v.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("rank 99"),
        "{reply}"
    );

    // A truncated JSON line is a parse error, not a crash.
    let v = ask(&mut writer, &mut reply, "{\"op\":\"plan\",\"seqs\":[9000");
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{reply}");

    // A 'seqs' flood under the byte cap is still rejected by count.
    let flood = format!("{{\"op\":\"plan\",\"seqs\":[{}1]}}", "1,".repeat(70_000));
    let v = ask(&mut writer, &mut reply, &flood);
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{reply}");
    assert!(
        v.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("limit"),
        "{reply}"
    );

    // The connection survived all of the above.
    let v = ask(&mut writer, &mut reply, "{\"op\":\"stats\"}");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{reply}");
    drop(reader);
    drop(writer);

    // A 2 MiB line with no newline trips the bounded reader: the server
    // answers with an error and closes that connection.
    {
        let mut big = TcpStream::connect(addr).expect("connect");
        let chunk = vec![b'x'; 64 * 1024];
        let mut sent = 0usize;
        while sent < 2 * 1024 * 1024 {
            match big.write(&chunk) {
                Ok(0) | Err(_) => break, // server already hung up
                Ok(n) => sent += n,
            }
        }
        let _ = big.shutdown(std::net::Shutdown::Write);
        // Best-effort read: the reset may outrun the error reply.
        let mut r = BufReader::new(big);
        let mut l = String::new();
        if r.read_line(&mut l).is_ok() && !l.trim().is_empty() {
            let v = parse_json(l.trim()).expect("reply is JSON");
            assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{l}");
        }
    }

    // Fresh connections still serve: the pool outlived every attack.
    let line = send_request(addr, &plan_request(vec![500, 2500, 9000])).expect("plan response");
    let v = parse_json(&line).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{line}");
    assert_eq!(v.get("cached"), Some(&Json::Bool(true)));

    // Shut down and audit the ledger: four hostile requests recorded as
    // errors, two honest plans served, nobody died.
    let line = send_request(addr, &Request::Shutdown).expect("shutdown ack");
    assert_eq!(
        parse_json(&line).unwrap().get("shutting_down"),
        Some(&Json::Bool(true))
    );
    let report = handle.join().expect("server thread exits");
    assert_eq!(report.metrics.plan_requests, 2);
    assert_eq!(report.metrics.cache_hits, 1);
    assert_eq!(report.metrics.errors, 4);
}

//! Cross-crate integration tests: every scheduler, every dataset, one
//! simulated pipeline, with the paper's qualitative claims asserted.

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin::baselines::{HybridDp, LlamaCp, Packing, TeCp};
use zeppelin::core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin::core::zeppelin::{Zeppelin, ZeppelinConfig};
use zeppelin::data::batch::{sample_batch, Batch};
use zeppelin::data::datasets::{arxiv, github, paper_datasets, prolong64k};
use zeppelin::exec::step::{simulate_step, StepConfig};
use zeppelin::exec::tp::fold_tp;
use zeppelin::exec::trainer::{run_training, RunConfig};
use zeppelin::model::config::{llama_13b, llama_3b};
use zeppelin::sim::topology::{cluster_a, cluster_b, cluster_c};

fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(TeCp::new()),
        Box::new(TeCp::with_routing()),
        Box::new(LlamaCp::new()),
        Box::new(HybridDp::new()),
        Box::new(Packing::new()),
        Box::new(Zeppelin::new()),
        Box::new(Zeppelin::with_config(ZeppelinConfig {
            routing: false,
            remapping: false,
        })),
    ]
}

#[test]
fn every_scheduler_runs_on_every_dataset() {
    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let cfg = StepConfig::default();
    let mut rng = StdRng::seed_from_u64(123);
    for dist in paper_datasets() {
        let batch = sample_batch(&dist, &mut rng, 65_536);
        for scheduler in all_schedulers() {
            let report = simulate_step(scheduler.as_ref(), &batch, &ctx, &cfg)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", scheduler.name(), dist.name));
            assert!(
                report.throughput > 0.0,
                "{} on {}",
                scheduler.name(),
                dist.name
            );
            assert!(report.layer_backward > report.layer_forward);
            assert_eq!(report.tokens, 65_536);
        }
    }
}

#[test]
fn zeppelin_beats_te_cp_on_all_paper_datasets() {
    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let cfg = StepConfig::default();
    let mut rng = StdRng::seed_from_u64(77);
    for dist in paper_datasets() {
        let batch = sample_batch(&dist, &mut rng, 65_536);
        let te = simulate_step(&TeCp::new(), &batch, &ctx, &cfg).unwrap();
        let zep = simulate_step(&Zeppelin::new(), &batch, &ctx, &cfg).unwrap();
        assert!(
            zep.throughput > 1.2 * te.throughput,
            "{}: zeppelin {} vs te {}",
            dist.name,
            zep.throughput,
            te.throughput
        );
    }
}

#[test]
fn routing_helps_te_cp_on_internode_rings() {
    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let cfg = StepConfig::default();
    let batch = Batch::new(vec![65_536]);
    let plain = simulate_step(&TeCp::new(), &batch, &ctx, &cfg).unwrap();
    let routed = simulate_step(&TeCp::with_routing(), &batch, &ctx, &cfg).unwrap();
    assert!(
        routed.throughput > 1.3 * plain.throughput,
        "routing {} vs plain {}",
        routed.throughput,
        plain.throughput
    );
}

#[test]
fn full_zeppelin_is_at_least_as_good_as_engine_only() {
    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let cfg = StepConfig::default();
    let mut rng = StdRng::seed_from_u64(5);
    let batch = sample_batch(&arxiv(), &mut rng, 65_536);
    let full = simulate_step(&Zeppelin::new(), &batch, &ctx, &cfg).unwrap();
    let engine_only = simulate_step(
        &Zeppelin::with_config(ZeppelinConfig {
            routing: false,
            remapping: false,
        }),
        &batch,
        &ctx,
        &cfg,
    )
    .unwrap();
    assert!(full.throughput >= engine_only.throughput * 0.99);
}

#[test]
fn training_runs_are_reproducible_across_processes_shapes() {
    let cluster = cluster_b(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let cfg = RunConfig {
        steps: 3,
        tokens_per_step: 65_536,
        seed: 9,
        step: StepConfig::default(),
    };
    let a = run_training(&Zeppelin::new(), &github(), &ctx, &cfg).unwrap();
    let b = run_training(&Zeppelin::new(), &github(), &ctx, &cfg).unwrap();
    assert_eq!(a.mean_step_time, b.mean_step_time);
    assert_eq!(a.steps.len(), 3);
}

#[test]
fn tp_folding_runs_end_to_end() {
    let physical = cluster_a(2);
    let folded = fold_tp(&physical, 2).unwrap();
    let model = llama_13b();
    let ctx = SchedulerCtx::new(&folded, &model);
    let mut rng = StdRng::seed_from_u64(1);
    let batch = sample_batch(&prolong64k(), &mut rng, 65_536);
    let report = simulate_step(&Zeppelin::new(), &batch, &ctx, &StepConfig::default()).unwrap();
    assert!(report.throughput > 0.0);
    // 8 logical workers (16 GPUs / tp2).
    assert_eq!(report.forward_phase.attention.len(), 8);
}

#[test]
fn faster_cluster_yields_faster_training() {
    let model = llama_3b();
    let cfg = StepConfig::default();
    let mut rng = StdRng::seed_from_u64(2);
    let batch = sample_batch(&arxiv(), &mut rng, 65_536);
    let t = |cluster: &zeppelin::sim::topology::ClusterSpec| {
        let ctx = SchedulerCtx::new(cluster, &model);
        simulate_step(&Zeppelin::new(), &batch, &ctx, &cfg)
            .unwrap()
            .throughput
    };
    let a = t(&cluster_a(2));
    let c = t(&cluster_c(2));
    assert!(c > a, "H200 cluster {c} should beat A800 cluster {a}");
}

#[test]
fn step_time_scales_linearly_with_layer_count() {
    let cluster = cluster_a(2);
    let mut shallow = llama_3b();
    shallow.layers = 13;
    let deep = llama_3b(); // 26 layers.
    let batch = Batch::new(vec![16_000, 8_000, 4_000, 2_000, 1_000, 500, 250, 36_786]);
    let cfg = StepConfig::default();
    let t = |m: &zeppelin::model::config::ModelConfig| {
        let ctx = SchedulerCtx::new(&cluster, m);
        simulate_step(&Zeppelin::new(), &batch, &ctx, &cfg)
            .unwrap()
            .step_time
            .as_secs_f64()
    };
    let ts = t(&shallow);
    let td = t(&deep);
    let ratio = td / ts;
    assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
}

#[test]
fn packing_pays_for_redundant_attention() {
    // On a short-sequence batch, packing's attention includes the windowed
    // cross-sequence waste, so Zeppelin must beat it comfortably.
    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let cfg = StepConfig::default();
    let batch = Batch::new(vec![512; 128]);
    let packing = simulate_step(&Packing::new(), &batch, &ctx, &cfg).unwrap();
    let zeppelin = simulate_step(&Zeppelin::new(), &batch, &ctx, &cfg).unwrap();
    assert!(packing.plan.redundant_attn_frac > 0.5);
    assert!(zeppelin.throughput > packing.throughput);
}

//! Property-based tests of the communication routing layer (§3.3).

use proptest::prelude::*;

use zeppelin::core::routing::{direct_cost, eq1_cost, proxies_of_node, route_internode};
use zeppelin::sim::topology::{cluster_a, cluster_b, cluster_c, ClusterSpec};

fn clusters() -> impl Strategy<Value = ClusterSpec> {
    (1usize..=2, 2usize..=4).prop_map(|(kind, nodes)| match kind {
        1 => cluster_a(nodes),
        _ => cluster_b(nodes),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn routed_transfers_conserve_bytes_and_chain_stages(
        cluster in clusters(),
        src_local in 0usize..8,
        dst_local in 0usize..8,
        bytes in 0.0f64..1e9,
    ) {
        let nodes = cluster.nodes;
        prop_assume!(nodes >= 2);
        let src = src_local; // Node 0.
        let dst = cluster.node.gpus_per_node + dst_local; // Node 1.
        let rt = route_internode(&cluster, src, dst, bytes);
        prop_assert!((rt.inter_bytes() - bytes).abs() <= bytes * 1e-9 + 1e-6);
        prop_assert!(rt.lanes() >= 1 && rt.lanes() <= cluster.node.nic_count);
        let mut tx_nics = std::collections::HashSet::new();
        for (d, i, g) in &rt.shares {
            // Stage chaining and locality.
            if let Some(d) = d {
                prop_assert_eq!(d.src, src);
                prop_assert_eq!(d.dst, i.src);
                prop_assert!(cluster.same_node(d.src, d.dst));
            } else {
                prop_assert_eq!(i.src, src);
            }
            if let Some(g) = g {
                prop_assert_eq!(g.dst, dst);
                prop_assert_eq!(i.dst, g.src);
                prop_assert!(cluster.same_node(g.src, g.dst));
            } else {
                prop_assert_eq!(i.dst, dst);
            }
            prop_assert!(!cluster.same_node(i.src, i.dst));
            // Distinct NIC per lane.
            prop_assert!(tx_nics.insert(cluster.nic_of(i.src)));
        }
    }

    #[test]
    fn proxies_cover_each_nic_exactly_once(cluster in clusters(), node_sel in 0usize..4) {
        let node = node_sel % cluster.nodes;
        let proxies = proxies_of_node(&cluster, node);
        prop_assert_eq!(proxies.len(), cluster.node.nic_count);
        let mut nics: Vec<usize> = proxies.iter().map(|&r| cluster.nic_of(r)).collect();
        nics.sort_unstable();
        nics.dedup();
        prop_assert_eq!(nics.len(), cluster.node.nic_count);
        prop_assert!(proxies.iter().all(|&r| cluster.node_of(r) == node));
    }

    #[test]
    fn eq1_never_beats_the_intra_floor_nor_loses_to_direct(
        n in 1.0f64..1e9,
        x1 in 1usize..16,
        x2 in 1usize..16,
    ) {
        let b_intra = 1.0 / 400e9;
        let b_inter = 1.0 / 25e9;
        let cost = eq1_cost(n, x1, x2, b_intra, b_inter);
        // Lower bound: the bottleneck inter share must still cross.
        let floor = b_inter * (n / x1 as f64).max(n / x2 as f64);
        prop_assert!(cost >= floor - 1e-12);
        // Routing with one proxy each degenerates to the direct send.
        if x1 == 1 && x2 == 1 {
            prop_assert!((cost - direct_cost(n, b_inter)).abs() < 1e-12);
        }
        // More proxies never hurt (monotone non-increasing in x1 = x2).
        if x1 == x2 && x1 > 1 {
            let fewer = eq1_cost(n, x1 - 1, x2 - 1, b_intra, b_inter);
            prop_assert!(cost <= fewer + 1e-12);
        }
    }

    #[test]
    fn routing_on_one_to_one_clusters_uses_every_gpu(nodes in 2usize..4, src in 0usize..8) {
        let cluster = cluster_c(nodes);
        let rt = route_internode(&cluster, src, cluster.node.gpus_per_node, 1e8);
        prop_assert_eq!(rt.lanes(), 8);
    }
}

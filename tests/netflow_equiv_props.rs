//! Equivalence properties for the incremental max-min fair allocator.
//!
//! The incremental allocator in `zeppelin_sim::network` claims to be
//! *observationally identical* to the frozen from-scratch implementation in
//! `zeppelin_sim::reference`: same rates, same completion instants, same
//! drained sets, same engine schedules. These properties drive both
//! implementations through randomized flow churn — interleaved starts and
//! finishes, shared and disjoint paths, zero-byte flows, recycled keys —
//! and through whole-DAG simulations, checking rates to 1e-9 relative and
//! every simulated instant exactly.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use proptest::prelude::*;

use zeppelin::sim::engine::Simulator;
use zeppelin::sim::network::{FlowKey, FlowNetwork};
use zeppelin::sim::reference::{RefFlowKey, ReferenceNet};
use zeppelin::sim::time::{SimDuration, SimTime};
use zeppelin::sim::topology::{cluster_a, ClusterSpec, Port};

const RANKS: usize = 16; // cluster_a(2): two 8-GPU nodes, GPU pairs share NICs.

/// One step of flow churn applied identically to both implementations.
#[derive(Debug, Clone)]
enum Op {
    /// Start a flow; `mbytes == 0` exercises the instantly-drained path.
    Start { src: usize, dst: usize, mbytes: u64 },
    /// Advance to the next completion instant and finish what drained
    /// (recycles keys, so later starts reuse slots).
    Drain,
    /// Advance partway without finishing anything.
    Nudge { micros: u64 },
    /// Re-rate a NIC pair (fault injection's degradation path): both
    /// implementations must rebalance onto the same allocation.
    SetCap { nic: usize, pct: u64 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let start = || {
        (0usize..RANKS, 0usize..RANKS, 0u64..4000)
            .prop_filter_map("distinct endpoints", |(src, dst, mbytes)| {
                (src != dst).then_some(Op::Start { src, dst, mbytes })
            })
    };
    let op = prop_oneof![
        start(),
        start(),
        Just(Op::Drain),
        (1u64..50_000).prop_map(|micros| Op::Nudge { micros }),
        (0usize..8, 1u64..=100).prop_map(|(nic, pct)| Op::SetCap { nic, pct }),
    ];
    prop::collection::vec(op, 1..120)
}

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Asserts every live flow and sampled port agrees between the two nets.
fn check_state(
    net: &FlowNetwork,
    oracle: &ReferenceNet,
    live: &[(FlowKey, RefFlowKey)],
) -> Result<(), TestCaseError> {
    for &(k, r) in live {
        let (a, b) = (net.rate_of(k), oracle.rate_of(r));
        prop_assert!(rel_close(a, b), "rate {a} vs oracle {b}");
        let (a, b) = (net.remaining_of(k), oracle.remaining_of(r));
        prop_assert!(rel_close(a, b), "remaining {a} vs oracle {b}");
    }
    for nic in 0..8 {
        let port = Port::NicTx(nic);
        let (a, b) = (net.port_usage(port), oracle.port_usage(port));
        prop_assert!(rel_close(a, b), "port_usage({port:?}) {a} vs oracle {b}");
    }
    prop_assert_eq!(net.active_flows(), oracle.active_flows());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random churn: the incremental allocator tracks the from-scratch
    /// oracle on rates, remaining bytes, port usage, drained sets, and
    /// (exactly) on completion instants.
    #[test]
    fn incremental_allocator_matches_oracle_under_churn(ops in ops()) {
        let c = cluster_a(2);
        let cap = |p: Port| c.port_capacity(p);
        let mut net = FlowNetwork::new();
        let mut oracle = ReferenceNet::new();
        let mut live: Vec<(FlowKey, RefFlowKey)> = Vec::new();
        let mut drained_buf: Vec<FlowKey> = Vec::new();
        for op in &ops {
            match *op {
                Op::Start { src, dst, mbytes } => {
                    let bytes = mbytes as f64 * 1e6;
                    let path = c.direct_path(src, dst);
                    let k = net.start_flow(bytes, &path, cap);
                    let r = oracle.start_flow(bytes, &path, cap);
                    live.push((k, r));
                }
                Op::Drain => {
                    let (a, b) = (net.next_completion(), oracle.next_completion());
                    prop_assert_eq!(a, b, "next_completion diverged");
                    let Some(t) = a else { continue };
                    net.advance_to(t);
                    oracle.advance_to(t);
                    drained_buf.clear();
                    net.collect_drained(&mut drained_buf);
                    prop_assert_eq!(&drained_buf, &net.drained(), "collect_drained != scan");
                    let oracle_drained = oracle.drained();
                    prop_assert_eq!(drained_buf.len(), oracle_drained.len());
                    net.begin_update();
                    for &k in &drained_buf {
                        let pos = live.iter().position(|&(a, _)| a == k).expect("live key");
                        let (_, r) = live.swap_remove(pos);
                        prop_assert!(oracle_drained.contains(&r), "drained sets diverged");
                        net.finish_flow(k);
                        oracle.finish_flow(r);
                    }
                    net.commit_update();
                }
                Op::Nudge { micros } => {
                    let t = net.clock() + SimDuration::from_micros(micros);
                    net.advance_to(t);
                    oracle.advance_to(t);
                }
                Op::SetCap { nic, pct } => {
                    for port in [Port::NicTx(nic), Port::NicRx(nic)] {
                        let capacity = c.port_capacity(port) * pct as f64 / 100.0;
                        net.set_port_capacity(port, capacity);
                        oracle.set_port_capacity(port, capacity);
                    }
                }
            }
            let (a, b) = (net.next_completion(), oracle.next_completion());
            prop_assert_eq!(a, b, "next_completion diverged after op {:?}", op);
            check_state(&net, &oracle, &live)?;
        }
    }

    /// A batched group of starts must land on the same allocation as
    /// applying the same starts one by one — bitwise, because the fixed
    /// point depends only on the final flow set.
    #[test]
    fn batched_mutations_match_sequential(
        specs in prop::collection::vec((0usize..RANKS, 0usize..RANKS, 1u64..3000), 1..40)
    ) {
        let c = cluster_a(2);
        let cap = |p: Port| c.port_capacity(p);
        let mut sequential = FlowNetwork::new();
        let mut batched = FlowNetwork::new();
        batched.begin_update();
        let mut pairs = Vec::new();
        for &(src, dst, mbytes) in &specs {
            let dst = if src == dst { (dst + 1) % RANKS } else { dst };
            let bytes = mbytes as f64 * 1e6;
            let path = c.direct_path(src, dst);
            let ks = sequential.start_flow(bytes, &path, cap);
            let kb = batched.start_flow(bytes, &path, cap);
            pairs.push((ks, kb));
        }
        batched.commit_update();
        for &(ks, kb) in &pairs {
            prop_assert_eq!(
                sequential.rate_of(ks).to_bits(),
                batched.rate_of(kb).to_bits(),
                "batched rate diverged from sequential"
            );
        }
        prop_assert_eq!(sequential.next_completion(), batched.next_completion());
    }

    /// The same churn applied at 1, 2, and 8 workers (parallel threshold
    /// forced to 1 so every commit takes the pool path) lands on bitwise
    /// identical allocations, and all of them track the oracle.
    #[test]
    fn worker_pool_matches_sequential_under_churn(ops in ops()) {
        let c = cluster_a(2);
        let cap = |p: Port| c.port_capacity(p);
        let mut oracle = ReferenceNet::new();
        let mut nets: Vec<FlowNetwork> = [1usize, 2, 8]
            .iter()
            .map(|&w| {
                let mut n = FlowNetwork::new();
                n.set_workers(w);
                n.set_parallel_threshold(1);
                n
            })
            .collect();
        let mut live: Vec<(FlowKey, RefFlowKey)> = Vec::new();
        let mut drained_buf: Vec<FlowKey> = Vec::new();
        for op in &ops {
            match *op {
                Op::Start { src, dst, mbytes } => {
                    let bytes = mbytes as f64 * 1e6;
                    let path = c.direct_path(src, dst);
                    let k = nets[0].start_flow(bytes, &path, cap);
                    for net in &mut nets[1..] {
                        // Identical mutation history → identical key recycling.
                        prop_assert_eq!(net.start_flow(bytes, &path, cap), k);
                    }
                    live.push((k, oracle.start_flow(bytes, &path, cap)));
                }
                Op::Drain => {
                    let t = nets[0].next_completion();
                    for net in &mut nets[1..] {
                        prop_assert_eq!(net.next_completion(), t, "completion diverged");
                    }
                    let Some(t) = t else { continue };
                    drained_buf.clear();
                    for net in &mut nets {
                        net.advance_to(t);
                    }
                    oracle.advance_to(t);
                    nets[0].collect_drained(&mut drained_buf);
                    for net in &mut nets {
                        net.begin_update();
                    }
                    for &k in &drained_buf {
                        let pos = live.iter().position(|&(a, _)| a == k).expect("live key");
                        let (_, r) = live.swap_remove(pos);
                        for net in &mut nets {
                            net.finish_flow(k);
                        }
                        oracle.finish_flow(r);
                    }
                    for net in &mut nets {
                        net.commit_update();
                    }
                }
                Op::Nudge { micros } => {
                    let t = nets[0].clock() + SimDuration::from_micros(micros);
                    for net in &mut nets {
                        net.advance_to(t);
                    }
                    oracle.advance_to(t);
                }
                Op::SetCap { nic, pct } => {
                    for port in [Port::NicTx(nic), Port::NicRx(nic)] {
                        let capacity = c.port_capacity(port) * pct as f64 / 100.0;
                        for net in &mut nets {
                            net.set_port_capacity(port, capacity);
                        }
                        oracle.set_port_capacity(port, capacity);
                    }
                }
            }
            // Bitwise agreement across worker counts, tolerance vs oracle.
            for &(k, _) in &live {
                let bits = nets[0].rate_of(k).to_bits();
                for net in &mut nets[1..] {
                    prop_assert_eq!(net.rate_of(k).to_bits(), bits, "rate bits diverged");
                }
            }
            let t = nets[0].next_completion();
            for net in &mut nets[1..] {
                prop_assert_eq!(net.next_completion(), t, "completion diverged after op");
            }
            check_state(&nets[2], &oracle, &live)?;
        }
        // The pool actually engaged on the multi-worker nets whenever a
        // commit saw two or more components (stats are observational).
        prop_assert!(nets[0].stats().parallel_rebalances == 0, "1 worker must stay sequential");
    }

    /// Whole-DAG check: the engine (incremental allocator, batched event
    /// handling, min-heap completions) produces exactly the schedule of a
    /// step-by-step event loop over the from-scratch reference network.
    #[test]
    fn engine_schedules_match_reference_net(spec in transfer_dags()) {
        let c = cluster_a(2);
        let tasks = build_tasks(&c, &spec);
        let mut sim = Simulator::new(&c);
        let mut ids = Vec::new();
        for (bytes, path, deps) in &tasks {
            let deps = deps.iter().map(|&d| ids[d]).collect();
            ids.push(sim.transfer(*bytes, path.clone(), deps, None).unwrap());
        }
        let report = sim.run().unwrap();
        let (makespan, spans) = run_reference(&c, &tasks);
        prop_assert_eq!(report.makespan, makespan, "makespan diverged");
        for (i, &id) in ids.iter().enumerate() {
            prop_assert_eq!(report.span(id), spans[i], "span of task {} diverged", i);
        }
    }
}

/// Raw DAG spec: per task `(flags, mbytes, src, dst, dep, dep)`.
type TaskDraw = (
    u8,
    u64,
    prop::sample::Index,
    prop::sample::Index,
    prop::sample::Index,
    prop::sample::Index,
);

fn transfer_dags() -> impl Strategy<Value = Vec<TaskDraw>> {
    prop::collection::vec(
        (
            any::<u8>(),
            1u64..4000,
            any::<prop::sample::Index>(),
            any::<prop::sample::Index>(),
            any::<prop::sample::Index>(),
            any::<prop::sample::Index>(),
        ),
        1..32,
    )
}

/// Lowers the raw draws into `(bytes, path, deps)` transfer tasks.
fn build_tasks(c: &ClusterSpec, spec: &[TaskDraw]) -> Vec<(f64, Vec<Port>, Vec<usize>)> {
    let mut tasks: Vec<(f64, Vec<Port>, Vec<usize>)> = Vec::new();
    for (i, (flags, mbytes, isrc, idst, idep1, idep2)) in spec.iter().enumerate() {
        let src = isrc.index(RANKS);
        let mut dst = idst.index(RANKS);
        if dst == src {
            dst = (dst + 1) % RANKS;
        }
        // 1-in-8 zero-byte transfers exercise the instant-completion path.
        let bytes = if flags & 7 == 0 {
            0.0
        } else {
            *mbytes as f64 * 1e6
        };
        let mut deps = Vec::new();
        if i > 0 {
            if flags & 8 != 0 {
                deps.push(idep1.index(i));
            }
            if flags & 16 != 0 {
                deps.push(idep2.index(i));
            }
            deps.sort_unstable();
            deps.dedup();
        }
        tasks.push((bytes, c.direct_path(src, dst), deps));
    }
    tasks
}

/// Event loop mirroring the seed engine semantics for transfer-only DAGs,
/// backed by the from-scratch [`ReferenceNet`]: per-mutation recompute,
/// full-scan completions, Vec-allocating drained collection.
fn run_reference(
    c: &ClusterSpec,
    tasks: &[(f64, Vec<Port>, Vec<usize>)],
) -> (SimTime, Vec<(SimTime, SimTime)>) {
    let n = tasks.len();
    let mut indeg = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, (_, _, deps)) in tasks.iter().enumerate() {
        indeg[i] = deps.len();
        for &d in deps {
            dependents[d].push(i);
        }
    }
    let mut net = ReferenceNet::new();
    let mut flow_task: HashMap<RefFlowKey, usize> = HashMap::new();
    let mut spans = vec![(SimTime::ZERO, SimTime::ZERO); n];
    let mut now = SimTime::ZERO;
    let mut net_gen = 0u64;
    let mut seq = 0u64;
    // (instant, insertion seq, generation) — same ordering as the engine.
    let mut events: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
    let mut ready: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    macro_rules! reschedule {
        () => {
            net_gen += 1;
            if let Some(t) = net.next_completion() {
                seq += 1;
                events.push(Reverse((t.max(now), seq, net_gen)));
            }
        };
    }
    loop {
        let mut net_dirty = false;
        while let Some(id) = ready.pop_front() {
            let (bytes, path, _) = &tasks[id];
            spans[id].0 = now;
            if *bytes <= 0.0 {
                spans[id].1 = now;
                for &dep in &dependents[id] {
                    indeg[dep] -= 1;
                    if indeg[dep] == 0 {
                        ready.push_back(dep);
                    }
                }
            } else {
                net.advance_to(now);
                let key = net.start_flow(*bytes, path, |p| c.port_capacity(p));
                flow_task.insert(key, id);
                net_dirty = true;
            }
        }
        if net_dirty {
            reschedule!();
        }
        let Some(Reverse((t, _, gen))) = events.pop() else {
            break;
        };
        now = t;
        if gen != net_gen {
            continue;
        }
        net.advance_to(now);
        let drained = net.drained();
        if drained.is_empty() {
            reschedule!();
            continue;
        }
        for key in drained {
            net.finish_flow(key);
            let id = flow_task.remove(&key).expect("flow has owner task");
            spans[id].1 = now;
            for &dep in &dependents[id] {
                indeg[dep] -= 1;
                if indeg[dep] == 0 {
                    ready.push_back(dep);
                }
            }
        }
        reschedule!();
    }
    let makespan = spans.iter().map(|&(_, e)| e).max().unwrap_or(SimTime::ZERO);
    (makespan, spans)
}

//! Property-based round-trip tests for plan JSON serialization, plus a
//! hostile-input corpus: structurally bogus documents must come back as
//! typed [`PlanIoError::Invalid`] reports, never as live `IterationPlan`s.

use proptest::prelude::*;

use zeppelin::core::plan::{AttnMode, IterationPlan, PlanOptions, SeqPlacement, Zone};
use zeppelin::core::plan_io::{plan_from_json, plan_to_json, PlanIoError};

fn arb_zone() -> impl Strategy<Value = Zone> {
    prop_oneof![
        Just(Zone::Local),
        Just(Zone::IntraNode),
        Just(Zone::InterNode)
    ]
}

fn arb_mode() -> impl Strategy<Value = AttnMode> {
    prop_oneof![
        Just(AttnMode::Ring),
        Just(AttnMode::AllGather),
        Just(AttnMode::Ulysses),
        Just(AttnMode::DoubleRing)
    ]
}

// Round-trip properties need plans that survive the parser's structural
// audit, so the generator enforces the same invariants a scheduler would:
// deduplicated ranks, single-rank local placements, positive lengths.
fn arb_placement() -> impl Strategy<Value = SeqPlacement> {
    (
        0usize..1000,
        1u64..1_000_000,
        arb_zone(),
        prop::collection::vec(0usize..256, 1..16),
        arb_mode(),
        0usize..4,
        any::<bool>(),
        prop::collection::vec(1u32..1_000_000, 16),
    )
        .prop_map(
            |(seq_index, len, zone, mut ranks, mode, micro_batch, use_weights, wpool)| {
                ranks.sort_unstable();
                ranks.dedup();
                let zone = if ranks.len() > 1 && zone == Zone::Local {
                    Zone::IntraNode
                } else {
                    zone
                };
                // Speed weights are either absent (uniform) or exactly one per rank.
                let weights = if use_weights {
                    wpool[..ranks.len()].to_vec()
                } else {
                    Vec::new()
                };
                SeqPlacement {
                    seq_index,
                    len,
                    zone,
                    ranks,
                    mode,
                    micro_batch,
                    weights,
                }
            },
        )
}

fn arb_plan() -> impl Strategy<Value = IterationPlan> {
    (
        // Scheduler names exercise escaping: quotes, backslashes, unicode.
        "[a-zA-Z0-9 \"\\\\\u{e9}\u{4e2d}]{0,24}",
        prop::collection::vec(arb_placement(), 0..20),
        any::<bool>(),
        any::<bool>(),
        0.0f64..1.0,
    )
        .prop_map(|(scheduler, placements, routing, remapping, frac)| {
            // Drop exact duplicates (the audit flags double-counted work),
            // then compact micro-batch ids to a dense 0..k range so the
            // declared count is consistent with the placements.
            let mut seen = std::collections::BTreeSet::new();
            let mut placements: Vec<SeqPlacement> = placements
                .into_iter()
                .filter(|p| seen.insert(format!("{p:?}")))
                .collect();
            let mut mbs: Vec<usize> = placements.iter().map(|p| p.micro_batch).collect();
            mbs.sort_unstable();
            mbs.dedup();
            for p in &mut placements {
                p.micro_batch = mbs.binary_search(&p.micro_batch).expect("member");
            }
            let micro_batches = mbs.len().max(1);
            IterationPlan {
                scheduler,
                placements,
                options: PlanOptions {
                    routing,
                    remapping,
                    speed_aware_remap: false,
                },
                micro_batches,
                redundant_attn_frac: frac,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_round_trip_is_identity(plan in arb_plan()) {
        let json = plan_to_json(&plan);
        let back = plan_from_json(&json).expect("serialized plans parse");
        prop_assert_eq!(plan, back);
    }

    #[test]
    fn serialized_plans_are_wellformed_json(plan in arb_plan()) {
        let json = plan_to_json(&plan);
        prop_assert!(zeppelin::exec::report::looks_like_json(&json));
        // And the generic parser agrees.
        prop_assert!(zeppelin::core::plan_io::parse_json(&json).is_ok());
    }

    #[test]
    fn junk_never_panics_the_parser(junk in "\\PC{0,64}") {
        // Any outcome is fine as long as it's a Result, not a panic.
        let _ = plan_from_json(&junk);
    }

    #[test]
    fn truncation_is_rejected_not_panicking(plan in arb_plan(), cut in 0usize..100) {
        let json = plan_to_json(&plan);
        if cut < json.len() && cut > 0 {
            let mut truncated = json.clone();
            // Cut at a char boundary.
            let mut idx = json.len() - cut.min(json.len() - 1);
            while !json.is_char_boundary(idx) {
                idx -= 1;
            }
            truncated.truncate(idx);
            if idx > 0 {
                prop_assert!(plan_from_json(&truncated).is_err());
            }
        }
    }
}

/// A small well-formed plan whose JSON the hostile corpus mutates.
fn base_plan() -> IterationPlan {
    IterationPlan {
        scheduler: "hostile-corpus".into(),
        placements: vec![
            SeqPlacement {
                seq_index: 0,
                len: 40_000,
                zone: Zone::Local,
                ranks: vec![3],
                mode: AttnMode::Ring,
                micro_batch: 0,
                weights: Vec::new(),
            },
            SeqPlacement {
                seq_index: 1,
                len: 500,
                zone: Zone::IntraNode,
                ranks: vec![0, 1],
                mode: AttnMode::Ring,
                micro_batch: 1,
                weights: vec![1024, 512],
            },
        ],
        options: PlanOptions::default(),
        micro_batches: 2,
        redundant_attn_frac: 0.125,
    }
}

#[test]
fn hostile_documents_are_rejected_with_field_named_reports() {
    let json = plan_to_json(&base_plan());
    assert!(plan_from_json(&json).is_ok(), "base plan parses clean");
    let cases: Vec<(&str, String)> = vec![
        ("len", json.replace("\"len\":500", "\"len\":0")),
        (
            "micro_batches",
            json.replace("\"micro_batches\":2", "\"micro_batches\":0"),
        ),
        ("rank", json.replace("\"ranks\":[0,1]", "\"ranks\":[0,0]")),
        (
            "redundant_attn_frac",
            json.replace(
                "\"redundant_attn_frac\":0.125",
                "\"redundant_attn_frac\":1e999",
            ),
        ),
        (
            "micro_batch",
            json.replace("\"micro_batch\":1,", "\"micro_batch\":7,"),
        ),
        ("ranks", json.replace("\"ranks\":[3]", "\"ranks\":[]")),
        ("local", json.replace("\"ranks\":[3]", "\"ranks\":[3,4]")),
    ];
    for (needle, mutated) in &cases {
        assert_ne!(&json, mutated, "mutation '{needle}' must change the text");
        let err = plan_from_json(mutated).expect_err(needle);
        assert!(
            matches!(err, PlanIoError::Invalid(_)),
            "'{needle}' should be an Invalid report, got {err}"
        );
        assert!(
            err.to_string().contains(needle),
            "'{needle}' missing from: {err}"
        );
    }
    // Duplicate placements double-count work.
    let mut dup = base_plan();
    let clone = dup.placements[1].clone();
    dup.placements.push(clone);
    let err = plan_from_json(&plan_to_json(&dup)).expect_err("duplicate placement");
    assert!(err.to_string().contains("duplicate"), "{err}");
}

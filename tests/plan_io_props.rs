//! Property-based round-trip tests for plan JSON serialization.

use proptest::prelude::*;

use zeppelin::core::plan::{AttnMode, IterationPlan, PlanOptions, SeqPlacement, Zone};
use zeppelin::core::plan_io::{plan_from_json, plan_to_json};

fn arb_zone() -> impl Strategy<Value = Zone> {
    prop_oneof![
        Just(Zone::Local),
        Just(Zone::IntraNode),
        Just(Zone::InterNode)
    ]
}

fn arb_mode() -> impl Strategy<Value = AttnMode> {
    prop_oneof![
        Just(AttnMode::Ring),
        Just(AttnMode::AllGather),
        Just(AttnMode::Ulysses),
        Just(AttnMode::DoubleRing)
    ]
}

fn arb_placement() -> impl Strategy<Value = SeqPlacement> {
    (
        0usize..1000,
        1u64..1_000_000,
        arb_zone(),
        prop::collection::vec(0usize..256, 1..16),
        arb_mode(),
        0usize..4,
    )
        .prop_map(
            |(seq_index, len, zone, ranks, mode, micro_batch)| SeqPlacement {
                seq_index,
                len,
                zone,
                ranks,
                mode,
                micro_batch,
            },
        )
}

fn arb_plan() -> impl Strategy<Value = IterationPlan> {
    (
        // Scheduler names exercise escaping: quotes, backslashes, unicode.
        "[a-zA-Z0-9 \"\\\\\u{e9}\u{4e2d}]{0,24}",
        prop::collection::vec(arb_placement(), 0..20),
        any::<bool>(),
        any::<bool>(),
        1usize..5,
        0.0f64..1.0,
    )
        .prop_map(
            |(scheduler, placements, routing, remapping, micro_batches, frac)| IterationPlan {
                scheduler,
                placements,
                options: PlanOptions { routing, remapping },
                micro_batches,
                redundant_attn_frac: frac,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_round_trip_is_identity(plan in arb_plan()) {
        let json = plan_to_json(&plan);
        let back = plan_from_json(&json).expect("serialized plans parse");
        prop_assert_eq!(plan, back);
    }

    #[test]
    fn serialized_plans_are_wellformed_json(plan in arb_plan()) {
        let json = plan_to_json(&plan);
        prop_assert!(zeppelin::exec::report::looks_like_json(&json));
        // And the generic parser agrees.
        prop_assert!(zeppelin::core::plan_io::parse_json(&json).is_ok());
    }

    #[test]
    fn junk_never_panics_the_parser(junk in "\\PC{0,64}") {
        // Any outcome is fine as long as it's a Result, not a panic.
        let _ = plan_from_json(&junk);
    }

    #[test]
    fn truncation_is_rejected_not_panicking(plan in arb_plan(), cut in 0usize..100) {
        let json = plan_to_json(&plan);
        if cut < json.len() && cut > 0 {
            let mut truncated = json.clone();
            // Cut at a char boundary.
            let mut idx = json.len() - cut.min(json.len() - 1);
            while !json.is_char_boundary(idx) {
                idx -= 1;
            }
            truncated.truncate(idx);
            if idx > 0 {
                prop_assert!(plan_from_json(&truncated).is_err());
            }
        }
    }
}

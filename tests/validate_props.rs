//! Differential property tests for the plan auditor
//! (`zeppelin_core::validate`), in two directions:
//!
//! 1. **No false positives** — every plan produced by a built-in scheduler
//!    (flat, packing, TE CP with and without routing, Llama CP, Ulysses,
//!    double-ring, hybrid DP, Zeppelin) must audit clean across random
//!    workloads and cluster sizes, including after an elastic
//!    `shrink_to_survivors` event.
//! 2. **Caught or clean** — hostile mutations of a valid plan must either
//!    be caught by `validate_with_batch`, or be harmless: `analyze` and the
//!    exec lowering (with the audit gate off) must not panic on them.
//!
//! The vendored proptest stub honors the `PROPTEST_CASES` environment
//! variable (like upstream); CI uses it to run a deeper hostile sweep than
//! the default local budget.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use zeppelin::baselines::{DoubleRingCp, FlatQuadratic, HybridDp, LlamaCp, Packing, TeCp, Ulysses};
use zeppelin::core::analysis::analyze;
use zeppelin::core::plan_io::{plan_from_json, plan_to_json};
use zeppelin::core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin::core::validate::{report, validate_with_batch};
use zeppelin::core::zeppelin::Zeppelin;
use zeppelin::data::batch::Batch;
use zeppelin::exec::step::{simulate_plan, StepConfig};
use zeppelin::model::config::llama_3b;
use zeppelin::sim::topology::cluster_a;

/// Every built-in scheduler, by audit-report label.
fn schedulers() -> Vec<(&'static str, Box<dyn Scheduler>)> {
    vec![
        ("flat", Box::new(FlatQuadratic::new())),
        ("packing", Box::new(Packing::new())),
        ("te", Box::new(TeCp::new())),
        ("te+routing", Box::new(TeCp::with_routing())),
        ("llama", Box::new(LlamaCp::new())),
        ("ulysses", Box::new(Ulysses::new())),
        ("double-ring", Box::new(DoubleRingCp::new())),
        ("hybrid", Box::new(HybridDp::new())),
        ("zeppelin", Box::new(Zeppelin::new())),
    ]
}

fn audit_text(err: Option<Vec<zeppelin::core::PlanViolation>>) -> String {
    err.map(|v| report(&v)).unwrap_or_default()
}

fn arb_lens() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(64u64..8_000, 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Trusted schedulers never trip the auditor: whenever planning
    /// succeeds, the full audit (structure, cluster, capacity, routing,
    /// remap, token conservation) passes.
    #[test]
    fn every_scheduler_plan_validates_clean(
        lens in arb_lens(),
        nodes in 1usize..4,
    ) {
        let ctx = SchedulerCtx::new(&cluster_a(nodes), &llama_3b()).with_capacity(16_384);
        let batch = Batch::new(lens.clone());
        for (name, s) in schedulers() {
            if let Ok(plan) = s.plan(&batch, &ctx) {
                let audit = validate_with_batch(&plan, &ctx, &batch);
                prop_assert!(
                    audit.is_ok(),
                    "{name} on {lens:?} ({nodes} node(s)): {}",
                    audit_text(audit.err())
                );
            }
        }
    }

    /// Replanning on a shrunk cluster (whole-node eviction after a rank
    /// death) still audits clean against the shrunk context.
    #[test]
    fn replans_after_shrink_to_survivors_validate_clean(
        lens in arb_lens(),
        dead_rank in 0usize..16,
    ) {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(16_384);
        let (shrunk, _) = ctx
            .shrink_to_survivors(&[dead_rank])
            .expect("one of two nodes survives");
        let batch = Batch::new(lens.clone());
        for (name, s) in schedulers() {
            if let Ok(plan) = s.plan(&batch, &shrunk) {
                let audit = validate_with_batch(&plan, &shrunk, &batch);
                prop_assert!(
                    audit.is_ok(),
                    "{name} post-shrink (dead {dead_rank}) on {lens:?}: {}",
                    audit_text(audit.err())
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The differential harness: mutate a valid Zeppelin plan in a hostile
    /// direction and demand caught-or-clean. If the auditor misses the
    /// mutation, `analyze` and `simulate_plan` (audit gate off) must
    /// survive it without panicking; structural corruptions must also be
    /// rejected when replayed through the JSON parser.
    #[test]
    fn hostile_mutations_are_caught_or_harmless(
        lens in arb_lens(),
        kind in 0usize..11,
        a in 0usize..5,
        at in any::<prop::sample::Index>(),
    ) {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(16_384);
        let batch = Batch::new(lens.clone());
        let planned = Zeppelin::new().plan(&batch, &ctx);
        prop_assume!(planned.is_ok());
        let mut plan = planned.unwrap();
        prop_assume!(!plan.placements.is_empty());
        let idx = at.index(plan.placements.len());
        match kind {
            0 => plan.placements[idx].ranks[0] = 999 + a,
            1 => plan.placements[idx].ranks.clear(),
            2 => {
                let dup = plan.placements[idx].ranks[0];
                plan.placements[idx].ranks.push(dup);
            }
            3 => plan.placements[idx].len = 0,
            4 => plan.placements[idx].micro_batch = plan.micro_batches + a,
            5 => plan.micro_batches = 0,
            6 => {
                plan.redundant_attn_frac = if a % 2 == 0 { f64::NAN } else { f64::INFINITY };
            }
            7 => {
                let dup = plan.placements[idx].clone();
                plan.placements.push(dup);
            }
            8 => plan.micro_batches = plan.placements.len() + 2 + a,
            9 => {
                let len = plan.placements[idx].len;
                plan.placements[idx].len = (len * 64).max(1_000_000);
            }
            _ => {} // benign control: no mutation, audit must stay clean
        }

        let audit = validate_with_batch(&plan, &ctx, &batch);
        if kind == 10 {
            prop_assert!(
                audit.is_ok(),
                "benign control flagged: {}",
                audit_text(audit.err())
            );
        }
        if audit.is_ok() {
            // Not caught: the mutation must be harmless to every consumer
            // that used to panic on corrupt plans.
            let model = llama_3b();
            let cluster = cluster_a(2);
            let analyzed = catch_unwind(AssertUnwindSafe(|| analyze(&plan, &model, &cluster)));
            prop_assert!(
                analyzed.is_ok(),
                "kind {kind} escaped the audit and panicked analyze on {lens:?}"
            );
            let cfg = StepConfig {
                audit_plans: false,
                ..StepConfig::default()
            };
            let lowered =
                catch_unwind(AssertUnwindSafe(|| simulate_plan(&plan, &batch, &ctx, &cfg)));
            prop_assert!(
                lowered.is_ok(),
                "kind {kind} escaped the audit and panicked the lowering on {lens:?}"
            );
        }

        // Structural corruptions are also stopped at the parse boundary:
        // the serialized mutant never comes back as a live plan. (Kinds 0
        // and 9 are cluster/batch-relative, invisible to a parser that has
        // no context, so they are exempt.)
        if (1..=8).contains(&kind) {
            prop_assert!(
                plan_from_json(&plan_to_json(&plan)).is_err(),
                "kind {kind} survived a JSON round trip on {lens:?}"
            );
        }
    }
}

//! Chaos-harness integration tests (DESIGN.md §11): the serving invariant
//! under seeded fault storms, seeded-replay determinism of the schedules,
//! and targeted loopback probes of each fault-tolerance mechanism —
//! deadlines, panic containment, the circuit breaker's degraded mode, and
//! the graceful-drain typed goodbye.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use zeppelin::core::plan_io::{parse_json, Json};
use zeppelin::serve::chaos::{run_chaos, PlannerChaos, ServeFaultSchedule};
use zeppelin::serve::protocol::{response_error_code, ErrorCode, Request};
use zeppelin::serve::{send_request, Server, ServerConfig};

/// The acceptance bar from the issue: the chaos invariant — every fault
/// resolves typed within the SLO, the worker pool stays whole, and the
/// service recovers to clean primary planning — holds for three distinct
/// seeds. The seeds run in parallel threads; each gets its own server on an
/// ephemeral port.
#[test]
fn chaos_invariant_holds_for_three_seeds() {
    let handles: Vec<_> = [7u64, 1234, 987_654_321]
        .into_iter()
        .map(|seed| {
            std::thread::spawn(move || {
                let schedule = ServeFaultSchedule::random(seed, 8);
                schedule.validate().expect("random schedules validate");
                let report = run_chaos(&schedule).expect("chaos run completes");
                assert!(
                    report.passed(),
                    "chaos invariant violated for seed {seed}:\n{}",
                    report.summary()
                );
                assert_eq!(
                    report.server.metrics.worker_respawns, 0,
                    "per-request containment caught every panic (seed {seed})"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().expect("seed thread completes");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Seeded replay: the same seed always produces the same schedule —
    /// event for event, byte for byte in the log — so any chaos failure in
    /// CI reproduces locally from nothing but the printed seed. Different
    /// seeds must actually explore different storms.
    #[test]
    fn schedules_replay_identically_from_their_seed(
        seed in any::<u64>(),
        count in 1usize..24,
    ) {
        let a = ServeFaultSchedule::random(seed, count);
        let b = ServeFaultSchedule::random(seed, count);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.event_log(), b.event_log());
        prop_assert!(a.validate().is_ok(), "random schedules stay within limits");
        prop_assert_eq!(a.events().len(), count);
        let other = ServeFaultSchedule::random(seed.wrapping_add(1), count);
        prop_assert_ne!(a.event_log(), other.event_log());
    }
}

fn plan_with_deadline(seqs: Vec<u64>, deadline_ms: u64) -> Request {
    Request::Plan {
        seqs,
        method: None,
        model: None,
        cluster: None,
        nodes: None,
        deadline_ms: Some(deadline_ms),
    }
}

fn bind_server(
    cfg: ServerConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<zeppelin::serve::ServerReport>,
) {
    let server = Server::bind(cfg).expect("bind an ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve until shutdown"));
    (addr, handle)
}

/// A planner stall pushed through the injection hook must surface as a
/// typed `deadline_exceeded` — never a stale plan — when the request's
/// budget is shorter than the stall.
#[test]
fn stalled_planning_past_the_deadline_answers_typed() {
    let chaos = Arc::new(PlannerChaos::new());
    let (addr, handle) = bind_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        chaos: Some(Arc::clone(&chaos)),
        ..ServerConfig::default()
    });

    chaos.push_stall(300);
    let req = plan_with_deadline(vec![4000, 1500, 800], 100);
    let line = send_request(addr, &req).expect("typed reply, not a hang");
    assert_eq!(
        response_error_code(&line),
        Some(ErrorCode::DeadlineExceeded),
        "{line}"
    );

    // Without a stall, the same budget is plenty: planning recovers.
    let req = plan_with_deadline(vec![4000, 1500, 801], 2_000);
    let line = send_request(addr, &req).expect("plan response");
    let v = parse_json(&line).expect("response is JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{line}");

    send_request(addr, &Request::Shutdown).expect("shutdown ack");
    let report = handle.join().expect("server thread exits");
    assert_eq!(report.metrics.deadline_exceeded, 1);
    assert_eq!(report.metrics.worker_respawns, 0);
}

/// Injected planner panics are contained at the request level: each is a
/// typed `worker_panicked` on a connection that *survives*, consecutive
/// panics trip the breaker into degraded mode, and the breaker half-opens
/// back to primary planning after its cooldown.
#[test]
fn planner_panics_are_contained_and_trip_the_breaker_into_degraded_mode() {
    let chaos = Arc::new(PlannerChaos::new());
    let (addr, handle) = bind_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        breaker_failures: 3,
        breaker_cooldown_ms: 200,
        chaos: Some(Arc::clone(&chaos)),
        ..ServerConfig::default()
    });

    // One connection rides through the whole episode: panics must not
    // drop it.
    let raw = TcpStream::connect(addr).expect("connect");
    let mut writer = raw.try_clone().expect("clone for writing");
    let mut reader = BufReader::new(raw);
    let mut reply = String::new();
    let mut ask = |writer: &mut TcpStream, reply: &mut String, req: &Request| {
        writeln!(writer, "{}", req.to_line()).expect("request line sends");
        reply.clear();
        reader.read_line(reply).expect("server answers");
        reply.trim().to_string()
    };

    // Three consecutive panics (distinct batches, so each is a cache miss
    // that reaches the planner) — each contained and typed.
    for i in 0..3u64 {
        chaos.push_panic();
        let line = ask(&mut writer, &mut reply, &Request::plan(vec![9000 + i, 500]));
        assert_eq!(
            response_error_code(&line),
            Some(ErrorCode::WorkerPanicked),
            "{line}"
        );
    }

    // The breaker is now open: a fresh miss is served by the fallback
    // scheduler, tagged degraded, instead of touching the sick planner.
    let line = ask(&mut writer, &mut reply, &Request::plan(vec![7000, 1500]));
    let v = parse_json(&line).expect("response is JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{line}");
    assert_eq!(v.get("degraded"), Some(&Json::Bool(true)), "{line}");

    // Past the cooldown the breaker half-opens, the trial run succeeds,
    // and primary planning resumes.
    std::thread::sleep(Duration::from_millis(250));
    let line = ask(&mut writer, &mut reply, &Request::plan(vec![6000, 2500]));
    let v = parse_json(&line).expect("response is JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{line}");
    assert_eq!(v.get("degraded"), Some(&Json::Bool(false)), "{line}");
    drop(reader);
    drop(writer);

    send_request(addr, &Request::Shutdown).expect("shutdown ack");
    let report = handle.join().expect("server thread exits");
    assert_eq!(report.metrics.worker_panics, 3);
    assert_eq!(report.metrics.breaker_trips, 1);
    assert_eq!(report.metrics.degraded, 1);
    assert_eq!(
        report.metrics.worker_respawns, 0,
        "containment held at the request level; the backstop never fired"
    );
}

/// Graceful drain: a straggler request arriving past the grace period gets
/// a typed `shutting_down` goodbye, not a silently dropped connection.
///
/// Determinism: both request lines are sent in one write, so the second is
/// already buffered in the server's frame reader while the first (stalled
/// by injection past the shutdown) is being served — the straggler check
/// runs on the buffered line with no read-timeout race.
#[test]
fn drain_stragglers_get_a_typed_goodbye() {
    let chaos = Arc::new(PlannerChaos::new());
    let (addr, handle) = bind_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        grace_ms: 0,
        chaos: Some(Arc::clone(&chaos)),
        ..ServerConfig::default()
    });

    chaos.push_stall(300);
    let raw = TcpStream::connect(addr).expect("connect");
    let mut writer = raw.try_clone().expect("clone for writing");
    let mut reader = BufReader::new(raw);
    let first = Request::plan(vec![4000, 900]).to_line();
    let second = Request::plan(vec![5000, 800]).to_line();
    writer
        .write_all(format!("{first}\n{second}\n").as_bytes())
        .expect("both lines send");

    // While the first request stalls in the planner, shut the server down
    // with a zero grace period from another connection.
    std::thread::sleep(Duration::from_millis(100));
    let ack = send_request(addr, &Request::Shutdown).expect("shutdown ack");
    assert_eq!(
        parse_json(&ack).unwrap().get("shutting_down"),
        Some(&Json::Bool(true))
    );

    // The in-flight request still completes (it was accepted before the
    // drain began)...
    let mut line = String::new();
    reader.read_line(&mut line).expect("first reply arrives");
    let v = parse_json(line.trim()).expect("reply is JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{line}");

    // ...and the buffered straggler is answered typed, then the
    // connection closes.
    line.clear();
    reader
        .read_line(&mut line)
        .expect("straggler reply arrives");
    assert_eq!(
        response_error_code(line.trim()),
        Some(ErrorCode::ShuttingDown),
        "{line}"
    );
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).unwrap_or(0),
        0,
        "the connection is closed after the goodbye"
    );

    let report = handle.join().expect("server thread exits");
    assert_eq!(report.metrics.shutting_down, 1);
    assert_eq!(
        report.metrics.plan_requests, 1,
        "the straggler never planned"
    );
}

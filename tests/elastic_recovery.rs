//! End-to-end elastic recovery: a node of a 2-node Cluster A crashes
//! mid-run and the trainer's recovery policies face it. The acceptance bar
//! is the paper-style goodput contract — replanning onto the survivors
//! lands within 10% of a fresh run on the surviving node, while fail-stop
//! surfaces a typed error.

use zeppelin::core::scheduler::SchedulerCtx;
use zeppelin::core::zeppelin::Zeppelin;
use zeppelin::data::datasets::arxiv;
use zeppelin::exec::recovery::{run_training_faults, FaultRunConfig, RecoveryPolicy};
use zeppelin::exec::step::StepConfig;
use zeppelin::exec::trainer::{RunConfig, RunError};
use zeppelin::model::config::llama_3b;
use zeppelin::sim::fault::FaultSchedule;
use zeppelin::sim::time::{SimDuration, SimTime};
use zeppelin::sim::topology::cluster_a;

const STEPS: usize = 8;
const TOKENS: u64 = 32_768;
const SEED: u64 = 2026;

fn cfg(policy: RecoveryPolicy) -> FaultRunConfig {
    FaultRunConfig {
        run: RunConfig {
            steps: STEPS,
            tokens_per_step: TOKENS,
            seed: SEED,
            step: StepConfig::default(),
        },
        policy,
        ..FaultRunConfig::default()
    }
}

/// Mean healthy step time on `ctx`, from a short fault-free run.
fn nominal(ctx: &SchedulerCtx) -> SimDuration {
    let r = run_training_faults(
        &Zeppelin::new(),
        &arxiv(),
        ctx,
        &cfg(RecoveryPolicy::FailStop),
        &FaultSchedule::new(),
    )
    .expect("fault-free run");
    SimDuration::from_nanos(r.productive_time.as_nanos() / r.committed_steps as u64)
}

/// Crash schedule killing node 1 about 2.5 steps into the run.
fn crash_mid_run(ctx: &SchedulerCtx) -> (FaultSchedule, SimTime) {
    let step = nominal(ctx);
    let at = SimTime::ZERO + SimDuration::from_secs_f64(step.as_secs_f64() * 2.5);
    (FaultSchedule::new().node_crash(&ctx.cluster, 1, at), at)
}

#[test]
fn replan_survivors_recovers_within_ten_percent_of_a_fresh_run() {
    let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b());
    let (faults, _) = crash_mid_run(&ctx);

    let replanned = run_training_faults(
        &Zeppelin::new(),
        &arxiv(),
        &ctx,
        &cfg(RecoveryPolicy::ReplanSurvivors),
        &faults,
    )
    .expect("elastic run completes");
    assert_eq!(replanned.committed_steps, STEPS);
    assert_eq!(replanned.final_ranks, 8, "one node survives");
    assert_eq!(replanned.recoveries.len(), 1, "one recovery event");
    assert!(replanned.lost_tokens > 0, "the doomed attempt is charged");
    assert!(replanned.goodput <= replanned.throughput * (1.0 + 1e-9));
    assert!(replanned.wall_time > replanned.productive_time);

    // Yardstick: the same workload run fresh on the surviving node.
    let survivor_ctx = SchedulerCtx::new(&cluster_a(1), &llama_3b());
    let fresh = run_training_faults(
        &Zeppelin::new(),
        &arxiv(),
        &survivor_ctx,
        &cfg(RecoveryPolicy::FailStop),
        &FaultSchedule::new(),
    )
    .expect("fresh survivor run");

    // The elastic run's pre-crash steps ran on twice the GPUs, so despite
    // one lost attempt + detection its goodput must stay within 10% of the
    // fresh single-node run.
    assert!(
        replanned.goodput >= 0.9 * fresh.goodput,
        "replan goodput {:.0} below 90% of fresh survivor goodput {:.0}",
        replanned.goodput,
        fresh.goodput
    );

    // Post-recovery steps run on the same cluster as the fresh run: their
    // throughput matches it step for step (same seeds, same batches).
    let post: Vec<f64> = replanned
        .steps
        .iter()
        .skip(2)
        .map(|s| s.throughput)
        .collect();
    let post_mean = post.iter().sum::<f64>() / post.len() as f64;
    assert!(
        post_mean >= 0.9 * fresh.throughput,
        "post-recovery throughput {post_mean:.0} below 90% of fresh {:.0}",
        fresh.throughput
    );
}

#[test]
fn fail_stop_surfaces_a_typed_rank_lost_error() {
    let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b());
    let (faults, _) = crash_mid_run(&ctx);
    let err = run_training_faults(
        &Zeppelin::new(),
        &arxiv(),
        &ctx,
        &cfg(RecoveryPolicy::FailStop),
        &faults,
    )
    .unwrap_err();
    match err {
        RunError::RankLost { rank, step } => {
            assert!(
                (8..16).contains(&rank),
                "node 1 hosts ranks 8-15, got {rank}"
            );
            assert_eq!(step, 2, "crash lands during step 2");
        }
        other => panic!("expected RankLost, got {other}"),
    }
}

#[test]
fn crash_before_any_work_is_survivable_by_replanning() {
    let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b());
    let faults = FaultSchedule::new().node_crash(&ctx.cluster, 0, SimTime::from_nanos(1));
    let r = run_training_faults(
        &Zeppelin::new(),
        &arxiv(),
        &ctx,
        &cfg(RecoveryPolicy::ReplanSurvivors),
        &faults,
    )
    .expect("replanning survives a crash at the first step");
    assert_eq!(r.committed_steps, STEPS);
    assert_eq!(r.final_ranks, 8);
}

#[test]
fn losing_every_node_is_a_typed_no_survivors_error() {
    let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b());
    let faults = FaultSchedule::new()
        .node_crash(&ctx.cluster, 0, SimTime::from_nanos(1))
        .node_crash(&ctx.cluster, 1, SimTime::from_nanos(2));
    let err = run_training_faults(
        &Zeppelin::new(),
        &arxiv(),
        &ctx,
        &cfg(RecoveryPolicy::ReplanSurvivors),
        &faults,
    )
    .unwrap_err();
    assert!(matches!(err, RunError::NoSurvivors { .. }), "got {err}");
}

//! Cluster planning what-if: sweep the NIC fabric (count × bandwidth) of a
//! hypothetical cluster and see how much of Zeppelin's advantage comes from
//! working around scarce inter-node bandwidth — useful when deciding
//! whether to buy NICs or rely on software routing.
//!
//! Run with: `cargo run --release --example cluster_planner`

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_baselines::te_cp::TeCp;
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::batch::sample_batch;
use zeppelin_data::datasets::arxiv;
use zeppelin_exec::step::{simulate_step, StepConfig};
use zeppelin_model::config::llama_7b;
use zeppelin_sim::topology::{gbit, gbyte, tflops, ClusterSpec, GpuSpec, NicSpec, NodeSpec};

fn custom_cluster(nodes: usize, nic_count: usize, nic_gbps: f64) -> ClusterSpec {
    let gpus_per_node = 8;
    ClusterSpec {
        name: format!("custom {nic_count}x{nic_gbps:.0}Gbps"),
        nodes,
        node_tiers: Vec::new(),
        node: NodeSpec {
            gpus_per_node,
            gpu: GpuSpec {
                peak_flops: tflops(312.0),
                mem_bytes: 80 * (1 << 30),
                nvlink_bw: gbyte(400.0),
                pcie_bw: gbyte(32.0),
            },
            nic_count,
            nic: NicSpec { bw: gbit(nic_gbps) },
            nic_affinity: (0..gpus_per_node)
                .map(|g| g * nic_count / gpus_per_node)
                .collect(),
        },
    }
}

fn main() {
    let model = llama_7b();
    let mut rng = StdRng::seed_from_u64(21);
    let batch = sample_batch(&arxiv(), &mut rng, 131_072);
    let cfg = StepConfig::default();

    println!("LLaMA-7B, 4 nodes x 8 GPUs, 128k ArXiv batch\n");
    println!(
        "{:<22} {:>12} {:>12} {:>9}",
        "fabric", "TE CP tok/s", "Zeppelin", "speedup"
    );
    for (nic_count, gbps) in [
        (1usize, 200.0),
        (2, 200.0),
        (4, 200.0),
        (8, 200.0),
        (8, 400.0),
        (8, 800.0),
    ] {
        let cluster = custom_cluster(4, nic_count, gbps);
        let ctx = SchedulerCtx::new(&cluster, &model);
        let run = |s: &dyn Scheduler| {
            simulate_step(s, &batch, &ctx, &cfg)
                .map(|r| r.throughput)
                .unwrap_or(f64::NAN)
        };
        let te = run(&TeCp::new());
        let zep = run(&Zeppelin::new());
        println!(
            "{:<22} {:>12.0} {:>12.0} {:>8.2}x",
            format!("{nic_count} x {gbps:.0} Gb/s"),
            te,
            zep,
            zep / te
        );
    }
    println!(
        "\nreading: Zeppelin's edge shrinks as raw inter-node bandwidth \
         grows — the routing layer is a substitute for NIC spend, and the \
         partitioner's zone thresholds shift with the fabric."
    );
}

//! Mixture-of-experts training: shows how router imbalance stretches the
//! linear modules, why FLOP-predicting schedulers (Hybrid DP) suffer, and
//! how Zeppelin's remapping keeps token counts flat for expert dispatch.
//!
//! Run with: `cargo run --release --example moe_training`

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_baselines::{HybridDp, LlamaCp, TeCp};
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::batch::sample_batch;
use zeppelin_data::datasets::prolong64k;
use zeppelin_exec::step::{moe_linear_factor, simulate_step, StepConfig};
use zeppelin_model::config::moe_8x550m;
use zeppelin_model::moe::{imbalance_factor, sample_expert_loads};
use zeppelin_sim::topology::cluster_c;

fn main() {
    let model = moe_8x550m();
    let moe = model.moe.expect("MoE model");
    let cluster = cluster_c(2);
    let ctx = SchedulerCtx::new(&cluster, &model);

    // Router imbalance across a few steps at different skew levels.
    println!("router imbalance (max expert load / mean), 64k tokens:");
    for skew in [0.0, 0.5, 1.0] {
        let factors: Vec<f64> = (0..4)
            .map(|seed| {
                let loads = sample_expert_loads(seed, moe.num_experts, moe.top_k, 65_536, skew);
                imbalance_factor(&loads)
            })
            .collect();
        let stretch = moe_linear_factor(&model, 65_536, 0, skew);
        println!(
            "  skew {skew:>3.1}: imbalance {:?} -> linear-time stretch {stretch:.3}",
            factors
                .iter()
                .map(|f| format!("{f:.2}"))
                .collect::<Vec<_>>()
        );
    }

    // End-to-end across context lengths: the paper's crossover — balanced
    // token layouts (LLaMA CP) are strongest while expert compute
    // dominates; Zeppelin's attention optimizations take over as context
    // grows.
    println!("\nthroughput (tokens/s) on ProLong64k, {}:", cluster.name);
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "context", "TE CP", "LLaMA CP", "Hybrid DP", "Zeppelin"
    );
    let cfg = StepConfig::default();
    let mut rng = StdRng::seed_from_u64(3);
    for ctx_tokens in [65_536u64, 131_072] {
        let batch = sample_batch(&prolong64k(), &mut rng, ctx_tokens);
        let mut row = format!("{:<12}", format!("{}k", ctx_tokens / 1024));
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(TeCp::new()),
            Box::new(LlamaCp::new()),
            Box::new(HybridDp::new()),
            Box::new(Zeppelin::new()),
        ];
        for s in schedulers {
            let cell = match simulate_step(s.as_ref(), &batch, &ctx, &cfg) {
                Ok(r) => format!("{:>10.0}", r.throughput),
                Err(_) => format!("{:>10}", "OOM"),
            };
            row.push_str(&cell);
        }
        println!("{row}");
    }
}

//! Quickstart: schedule and simulate one training step with Zeppelin and
//! the Transformer Engine CP baseline, and compare step times.
//!
//! Run with: `cargo run --release --example quickstart`

use zeppelin_baselines::te_cp::TeCp;
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::batch::Batch;
use zeppelin_exec::step::{simulate_step, StepConfig};
use zeppelin_model::config::llama_7b;
use zeppelin_sim::topology::cluster_a;

fn main() {
    // Two 8-GPU A800 nodes (the paper's Cluster A) training LLaMA-7B.
    let cluster = cluster_a(2);
    let model = llama_7b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    println!(
        "cluster: {} ({} GPUs), model: {}, capacity {} tokens/GPU",
        cluster.name,
        cluster.total_gpus(),
        model.name,
        ctx.capacity
    );

    // A variable-length batch: one long document, several medium ones, and
    // a pile of short ones — 64k tokens in total.
    let batch = Batch::new(vec![
        30_000, 9_000, 6_000, 5_000, 4_000, 3_000, 2_000, 1_500, 1_200, 1_000, 800, 500, 400, 300,
        200, 636,
    ]);
    println!(
        "batch: {} sequences, {} tokens, longest {}\n",
        batch.len(),
        batch.total_tokens(),
        batch.max_len()
    );

    let cfg = StepConfig::default();
    for scheduler in [&Zeppelin::new() as &dyn Scheduler, &TeCp::new()] {
        let report = simulate_step(scheduler, &batch, &ctx, &cfg).expect("step");
        println!(
            "{:<10}  step {}  ({:>8.0} tokens/s)  layer fwd {}  bwd {}",
            report.scheduler,
            report.step_time,
            report.throughput,
            report.layer_forward,
            report.layer_backward
        );
    }

    // Peek at Zeppelin's placement decisions.
    let plan = Zeppelin::new().plan(&batch, &ctx).expect("plan");
    println!("\nZeppelin placements (zone, ring size) per sequence:");
    for p in &plan.placements {
        println!(
            "  seq {:>2} ({:>6} tokens): {:?} over {} rank(s)",
            p.seq_index,
            p.len,
            p.zone,
            p.ranks.len()
        );
    }
}

//! Long-context dataset mixture: the Fig. 1 motivation as a runnable
//! scenario. Samples batches from a weighted mixture of corpora with very
//! different length profiles, shows how the partitioner classifies work
//! into the three zones per batch, and compares sustained throughput of
//! every method over a short training run.
//!
//! Run with: `cargo run --release --example long_context_mix`

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_baselines::{HybridDp, LlamaCp, TeCp};
use zeppelin_core::plan::Zone;
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::mixture::pretraining_mix;
use zeppelin_exec::step::{simulate_step, StepConfig};
use zeppelin_model::config::llama_7b;
use zeppelin_sim::topology::cluster_a;

fn main() {
    let cluster = cluster_a(4); // 32 GPUs.
    let model = llama_7b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let mix = pretraining_mix();
    let target = 131_072u64;
    let steps = 6;
    let mut rng = StdRng::seed_from_u64(11);
    let cfg = StepConfig::default();

    println!(
        "dataset mixture on {} ({} GPUs), {}k tokens/step\n",
        cluster.name,
        cluster.total_gpus(),
        target / 1024
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(TeCp::new()),
        Box::new(LlamaCp::new()),
        Box::new(HybridDp::new()),
        Box::new(Zeppelin::new()),
    ];
    let mut sums = vec![0.0f64; schedulers.len()];

    for step in 0..steps {
        let batch = mix.sample_batch(&mut rng, target);
        // Zone census for this batch under Zeppelin.
        let plan = Zeppelin::new().plan(&batch, &ctx).expect("plan");
        let count = |z: Zone| plan.placements.iter().filter(|p| p.zone == z).count();
        println!(
            "step {step}: {} seqs (max {:>6}) -> zones local={} intra={} inter={}",
            batch.len(),
            batch.max_len(),
            count(Zone::Local),
            count(Zone::IntraNode),
            count(Zone::InterNode)
        );
        for (i, s) in schedulers.iter().enumerate() {
            match simulate_step(s.as_ref(), &batch, &ctx, &cfg) {
                Ok(r) => sums[i] += r.throughput,
                Err(e) => println!("    {} failed: {e}", s.name()),
            }
        }
    }

    println!("\nmean throughput over {steps} steps:");
    for (i, s) in schedulers.iter().enumerate() {
        println!(
            "  {:<10} {:>10.0} tokens/s",
            s.name(),
            sums[i] / steps as f64
        );
    }
}

//! Timeline tracing: simulate one layer of a custom batch and export the
//! execution timeline as Chrome-trace JSON (open in `chrome://tracing` or
//! https://ui.perfetto.dev) plus an ASCII rendering in the terminal.
//!
//! Run with: `cargo run --release --example timeline_trace [-- <out.json>]`

use zeppelin_core::scheduler::SchedulerCtx;
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::batch::Batch;
use zeppelin_exec::step::{simulate_step, StepConfig};
use zeppelin_model::config::llama_3b;
use zeppelin_sim::topology::cluster_a;
use zeppelin_sim::trace::TraceCategory;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "zeppelin_trace.json".to_string());

    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let batch = Batch::new(vec![40_000, 12_000, 6_000, 3_000, 2_000, 1_000, 800, 736]);
    let report =
        simulate_step(&Zeppelin::new(), &batch, &ctx, &StepConfig::default()).expect("step");

    println!(
        "one layer: forward {} / backward {}; {} trace events",
        report.layer_forward,
        report.layer_backward,
        report.trace_forward.events().len()
    );

    // Category census.
    println!("\nbusy time per category (forward):");
    for (cat, busy) in report.trace_forward.busy_by_category() {
        println!("  {:<12} {busy}", cat.name());
    }

    // How much of the inter-node communication the routing layer absorbed.
    let routed: usize = report
        .trace_forward
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.category,
                TraceCategory::Dispatch | TraceCategory::InterNode | TraceCategory::Combine
            )
        })
        .count();
    println!("\nrouted-transfer stage events: {routed}");

    println!("\nASCII timeline (forward, 110 columns):");
    print!("{}", report.trace_forward.to_ascii(110));

    std::fs::write(&out_path, report.trace_forward.to_chrome_json()).expect("write trace");
    println!("\nwrote Chrome trace to {out_path}");
}

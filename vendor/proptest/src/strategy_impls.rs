//! Concrete [`Strategy`] implementations: combinators, numeric ranges,
//! tuples, and simple character-class string patterns.

use core::fmt::Debug;
use core::ops::{Range, RangeInclusive};

use crate::{BoxedStrategy, Strategy, TestRng};

/// How many times filtering combinators retry before giving the draw back
/// to the runner as a rejection.
const LOCAL_RETRIES: usize = 64;

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O + 'static> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2 + 'static> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let first = self.inner.sample(rng)?;
        (self.f)(first).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool + 'static> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..LOCAL_RETRIES {
            if let Some(v) = self.inner.sample(rng) {
                if (self.f)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> Option<O> + 'static> Strategy for FilterMap<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        for _ in 0..LOCAL_RETRIES {
            if let Some(v) = self.inner.sample(rng) {
                if let Some(o) = (self.f)(v) {
                    return Some(o);
                }
            }
        }
        None
    }
}

/// Uniform choice among boxed strategies; built by [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug + 'static> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        Some(if v >= self.end { self.start } else { v })
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        Some(lo + rng.next_f64() * (hi - lo))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return Some(rng.next_u64() as $t);
                }
                Some((lo as i128 + rng.below(span as u64) as i128) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($S:ident $idx:tt),+);)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

/// String strategies from simple regex-like patterns.
///
/// Supported forms, which cover this repository's tests:
///
/// - `\PC{a,b}` — `a..=b` arbitrary non-control characters;
/// - `[chars]{a,b}` — `a..=b` characters from an explicit class
///   (literal characters, `x-y` ranges, and backslash escapes);
/// - a bare class or escape without `{a,b}` generates exactly one char.
///
/// Anything unsupported panics so a silently-wrong generator can't hide.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> Option<String> {
        let (gen_char, lo, hi) = parse_pattern(self);
        let span = (hi - lo) as u64 + 1;
        let len = lo + rng.below(span) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            out.push(match gen_char {
                CharClass::NonControl => random_non_control(rng),
                CharClass::Set(ref set) => set[rng.below(set.len() as u64) as usize],
            });
        }
        Some(out)
    }
}

enum CharClass {
    NonControl,
    Set(Vec<char>),
}

fn parse_pattern(pat: &str) -> (CharClass, usize, usize) {
    let (class_src, rest) = if let Some(rest) = pat.strip_prefix("\\PC") {
        (CharClass::NonControl, rest)
    } else if let Some(body_start) = pat.strip_prefix('[') {
        let mut chars = body_start.chars();
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        let mut pending_range = false;
        let mut consumed = 1usize; // The '['.
        let mut closed = false;
        while let Some(c) = chars.next() {
            consumed += c.len_utf8();
            match c {
                ']' => {
                    closed = true;
                    break;
                }
                '\\' => {
                    let esc = chars.next().expect("dangling escape in pattern");
                    consumed += esc.len_utf8();
                    push_class_char(&mut set, &mut prev, &mut pending_range, esc);
                }
                '-' if prev.is_some() && !pending_range => pending_range = true,
                c => push_class_char(&mut set, &mut prev, &mut pending_range, c),
            }
        }
        assert!(closed, "unterminated character class in pattern {pat:?}");
        assert!(!set.is_empty(), "empty character class in pattern {pat:?}");
        (CharClass::Set(set), &body_start[consumed - 1..])
    } else {
        panic!("unsupported string pattern {pat:?} (stub proptest)");
    };
    let (lo, hi) = parse_repeat(rest, pat);
    (class_src, lo, hi)
}

fn push_class_char(
    set: &mut Vec<char>,
    prev: &mut Option<char>,
    pending_range: &mut bool,
    c: char,
) {
    if *pending_range {
        let start = prev.expect("range without start");
        for u in (start as u32)..=(c as u32) {
            if let Some(ch) = char::from_u32(u) {
                set.push(ch);
            }
        }
        *pending_range = false;
        *prev = None;
    } else {
        set.push(c);
        *prev = Some(c);
    }
}

fn parse_repeat(rest: &str, pat: &str) -> (usize, usize) {
    if rest.is_empty() {
        return (1, 1);
    }
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition {rest:?} in pattern {pat:?}"));
    let (lo, hi) = match inner.split_once(',') {
        Some((a, b)) => (a.trim(), b.trim()),
        None => (inner.trim(), inner.trim()),
    };
    let lo: usize = lo.parse().expect("bad repetition lower bound");
    let hi: usize = hi.parse().expect("bad repetition upper bound");
    assert!(lo <= hi, "inverted repetition in pattern {pat:?}");
    (lo, hi)
}

fn random_non_control(rng: &mut TestRng) -> char {
    loop {
        let c = match rng.below(8) {
            // Mostly printable ASCII, with Latin-1, CJK, and emoji mixed in.
            0..=4 => char::from_u32(0x20 + rng.below(0x5F) as u32),
            5 => char::from_u32(0xA1 + rng.below(0x1FF) as u32),
            6 => char::from_u32(0x4E00 + rng.below(0x200) as u32),
            _ => char::from_u32(0x1F600 + rng.below(0x40) as u32),
        };
        if let Some(c) = c {
            if !c.is_control() {
                return c;
            }
        }
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `proptest` to this minimal implementation of the API surface the repo's
//! property tests use: the [`proptest!`] runner macro, [`Strategy`] with
//! `prop_map` / `prop_flat_map` / `prop_filter` / `prop_filter_map`,
//! [`Just`], [`prop_oneof!`], `prop::collection::vec`, `prop::array`,
//! `prop::sample::Index`, `any::<T>()`, numeric-range strategies, and simple
//! character-class string strategies.
//!
//! Differences from real proptest: no shrinking (failing inputs are printed
//! verbatim), no persisted regressions file, and generation is plain random
//! sampling from a per-test deterministic seed. That keeps failures
//! reproducible run-to-run while covering the same input space. Like
//! upstream, the `PROPTEST_CASES` environment variable overrides the
//! configured case count (see [`effective_cases`]).

use core::fmt::Debug;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

pub mod strategy_impls;
pub use strategy_impls::*;

/// Deterministic generator driving all sampling (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// How one test case ended, for the runner.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains what.
    Fail(String),
    /// The case asked to be discarded (`prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` matters to this implementation.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Effective case budget: the `PROPTEST_CASES` environment variable when
/// set and parseable, else the configured value.
///
/// Matches real proptest's env override so CI can deepen sweeps
/// (`PROPTEST_CASES=1024 cargo test`) without each test reading the
/// variable by hand.
pub fn effective_cases(configured: u32) -> u32 {
    static ENV_CASES: std::sync::OnceLock<Option<u32>> = std::sync::OnceLock::new();
    ENV_CASES
        .get_or_init(|| {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(configured)
}

/// A recipe for generating values of `Self::Value`.
///
/// `sample` returns `None` when a filter rejects the draw; the runner
/// retries with fresh randomness.
pub trait Strategy: 'static {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O + 'static>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S + 'static>(
        self,
        f: F,
    ) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards draws for which `f` returns false.
    fn prop_filter<F: Fn(&Self::Value) -> bool + 'static>(
        self,
        _whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Maps draws through `f`, discarding those mapped to `None`.
    fn prop_filter_map<O: Debug, F: Fn(Self::Value) -> Option<O> + 'static>(
        self,
        _whence: impl Into<String>,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.0.sample(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Debug + Sized + 'static {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> Option<A> {
        Some(A::arbitrary(rng))
    }
}

/// The canonical strategy for `A`: `any::<bool>()`, `any::<Index>()`, …
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes.
        let m = rng.next_f64() * 2.0 - 1.0;
        let e = (rng.below(61) as i32 - 30) as f64;
        m * 10f64.powf(e)
    }
}

/// Strategy combinator namespaces (`prop::collection`, `prop::sample`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Sizes accepted by [`vec`]: exact, `a..b`, or `a..=b`.
        pub trait SizeRange {
            /// Draws a size.
            fn sample_size(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_size(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn sample_size(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + rng.below((self.end - self.start) as u64) as usize
            }
        }

        impl SizeRange for RangeInclusive<usize> {
            fn sample_size(&self, rng: &mut TestRng) -> usize {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty size range");
                lo + rng.below((hi - lo) as u64 + 1) as usize
            }
        }

        /// Strategy for `Vec<T>` with element strategy `element` and a size
        /// drawn from `size`.
        pub fn vec<S: Strategy, Z: SizeRange + 'static>(element: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { element, size }
        }

        /// See [`vec`].
        pub struct VecStrategy<S, Z> {
            element: S,
            size: Z,
        }

        impl<S: Strategy, Z: SizeRange + 'static> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
                let n = self.size.sample_size(rng);
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push(self.element.sample(rng)?);
                }
                Some(out)
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::*;

        /// An index into a runtime-sized slice, generated independently of
        /// the slice's length.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(usize);

        impl Index {
            /// Resolves against a slice.
            ///
            /// # Panics
            ///
            /// Panics if the slice is empty.
            pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
                assert!(!slice.is_empty(), "Index::get on empty slice");
                &slice[self.0 % slice.len()]
            }

            /// Resolves to a plain index below `len`.
            ///
            /// # Panics
            ///
            /// Panics if `len` is zero.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index with len 0");
                self.0 % len
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64() as usize)
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use super::super::*;

        /// See [`uniform4`]; generic over the array length.
        pub struct UniformArray<S, const N: usize>(S);

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N>
        where
            S::Value: Debug,
        {
            type Value = [S::Value; N];

            fn sample(&self, rng: &mut TestRng) -> Option<[S::Value; N]> {
                let mut out = Vec::with_capacity(N);
                for _ in 0..N {
                    out.push(self.0.sample(rng)?);
                }
                out.try_into().ok()
            }
        }

        /// `[T; 2]` with every element drawn from `s`.
        pub fn uniform2<S: Strategy>(s: S) -> UniformArray<S, 2> {
            UniformArray(s)
        }

        /// `[T; 3]` with every element drawn from `s`.
        pub fn uniform3<S: Strategy>(s: S) -> UniformArray<S, 3> {
            UniformArray(s)
        }

        /// `[T; 4]` with every element drawn from `s`.
        pub fn uniform4<S: Strategy>(s: S) -> UniformArray<S, 4> {
            UniformArray(s)
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// FNV-1a over the test name: the deterministic per-test seed.
pub fn seed_for_test(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runner macro: `proptest! { #![proptest_config(...)] #[test] fn f(x in s) {...} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases: u32 = $crate::effective_cases(config.cases);
            let mut rng = $crate::TestRng::seed_from_u64(
                $crate::seed_for_test(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u64 = 0;
            let max_attempts: u64 = (cases as u64) * 64 + 1024;
            while accepted < cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest '{}': too many rejected cases ({} attempts for {} accepted)",
                    stringify!($name),
                    attempts,
                    accepted,
                );
                let __vals = ( $(
                    match $crate::Strategy::sample(&$strat, &mut rng) {
                        Some(v) => v,
                        None => continue,
                    },
                )+ );
                let __desc = format!("{:?}", __vals);
                let ( $($pat,)+ ) = __vals;
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        },
                    ),
                );
                match __outcome {
                    Ok(Ok(())) => accepted += 1,
                    Ok(Err($crate::TestCaseError::Reject(_))) => continue,
                    Ok(Err($crate::TestCaseError::Fail(msg))) => {
                        panic!(
                            "proptest '{}' failed: {}\n  input: {}",
                            stringify!($name),
                            msg,
                            __desc,
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest '{}' panicked\n  input: {}",
                            stringify!($name),
                            __desc,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __l, __r,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r,
            )));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($a), stringify!($b), __l,
            )));
        }
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace patches `rand` to this minimal implementation covering the
//! API surface the repo actually uses: [`Rng`], [`RngExt::random_range`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a deterministic,
//! statistically solid generator. Streams differ from upstream `rand`'s
//! ChaCha-based `StdRng`, which is fine: nothing in the repo depends on the
//! exact stream, only on determinism-per-seed and uniformity.

use core::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u64`.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` (53-bit resolution).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods available on every [`Rng`].
pub trait RngExt: Rng {
    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_in(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that knows how to sample a uniform value of `T` from an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = rng.next_f64();
        let v = self.start + u * (self.end - self.start);
        // Guard against fp rounding landing exactly on the excluded bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Maps a uniform `u64` onto `[0, span)` without modulo bias worth caring
/// about here (widening-multiply method).
fn bounded(rng_val: u64, span: u64) -> u64 {
    ((rng_val as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng.next_u64(), span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into full generator state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

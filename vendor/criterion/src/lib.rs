//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the Criterion API the bench harnesses use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `Bencher::iter` —
//! with a plain wall-clock measurement loop instead of Criterion's
//! statistical machinery. Each benchmark warms up briefly, then runs enough
//! iterations to fill a measurement window and reports the mean time per
//! iteration. Good enough for before/after comparisons recorded in
//! EXPERIMENTS.md; not a replacement for real Criterion statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures; `iter` runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark driver (measurement configuration + reporting).
pub struct Criterion {
    sample_size: usize,
    measurement_window: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_window: Duration::from_millis(400),
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the nominal sample count (scales the measurement window).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepts CLI configuration; this stub only honours a name substring
    /// filter (first free argument) and ignores harness flags.
    pub fn configure_from_args(mut self) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        self.filter = filter;
        self
    }

    fn should_run(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if !self.should_run(id) {
            return;
        }
        // Calibration pass: one iteration to estimate per-iter cost.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let window = self.measurement_window.mul_f64((self.sample_size as f64 / 100.0).clamp(0.05, 1.0));
        let iters = (window.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
        // Warmup, then the measured pass.
        let mut warm = Bencher {
            iters: (iters / 4).max(1),
            elapsed: Duration::ZERO,
        };
        f(&mut warm);
        let mut meas = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut meas);
        let mean_ns = meas.elapsed.as_nanos() as f64 / meas.iters as f64;
        println!("{:<48} time: {:>12}   ({} iters)", id, fmt_ns(mean_ns), meas.iters);
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id` with `input` passed by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (reporting is immediate in this stub; no-op).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring Criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the harness `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
